"""Span-based tracing: where wall-clock time goes inside a run.

The metrics registry (PR 2) answers *what happened* — per-level hits,
counters, sum invariants.  This module answers *where time went*: a
:class:`Tracer` records nested, attributed spans around the phases of
an experiment (runner → simulate → batch → buffer loop; model
probability build; accel index build; packing levels) and exports them
as Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``)
or folded flamegraph text (``flamegraph.pl`` / speedscope input).

Design rules, mirroring the PR 2 sink pattern:

* **Disabled is free.**  The process-wide tracer defaults to ``None``;
  the module-level :func:`span` helper then returns the shared
  :data:`NULL_SPAN` singleton, so an un-traced call site pays one
  module-global read, one ``is None`` test, and an empty context
  manager.  Hot paths are instrumented at *phase/chunk* granularity
  (never per buffer request), so the disabled overhead is within noise
  — ``benchmarks/test_obs_overhead.py`` holds that bound.
* **Deterministic ids.**  Span ids are allocated sequentially in start
  order under a lock; thread ids are densified in first-seen order.
  Two runs of the same single-threaded workload produce identical
  id/parent structures (RL007 spirit: trace output is reproducible).
* **Thread-safe.**  The active-span stack is thread-local; the
  finished list and id counter are lock-protected, so worker threads
  can trace concurrently and their spans interleave without corruption.

Timing uses ``time.perf_counter_ns`` — monotonic, immune to wall-clock
adjustments, integer nanoseconds (no float accumulation error).  Each
span additionally records the calling thread's CPU time
(``time.thread_time_ns``), so traces of concurrent workloads (the
stack-distance sweep's per-capacity pool) distinguish compute from
blocking: a span whose ``cpu_us`` is far below its wall ``dur`` spent
the difference waiting (GIL, locks, I/O).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "NULL_SPAN",
    "Span",
    "TRACE_SCHEMA",
    "SpanNode",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "folded_stacks",
    "parse_chrome_trace",
    "span",
    "span_tree",
    "use_tracer",
    "write_chrome_trace",
    "write_folded",
]


class _NullSpan:
    """The do-nothing span: the disabled-tracing fast path.

    A single shared instance (:data:`NULL_SPAN`) is returned by
    :func:`span` whenever no tracer is installed — entering and
    exiting it does no work and allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attrs(self, **attrs: object) -> None:
        """Ignore attribute tags."""


NULL_SPAN = _NullSpan()
"""Shared no-op span used when tracing is disabled."""


class Span:
    """One timed, attributed region of a run (a context manager).

    Created by :meth:`Tracer.span`; the id and parent are resolved at
    ``__enter__`` (start order defines ids), the duration at
    ``__exit__``.  Attributes are free-form key/values tagged at
    creation or via :meth:`set_attrs` while the span is open.
    """

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "thread_index",
        "start_ns",
        "end_ns",
        "cpu_start_ns",
        "cpu_end_ns",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = str(name)
        self.attrs = attrs
        self.span_id: int = -1
        self.parent_id: int | None = None
        self.thread_index: int = 0
        self.start_ns: int = 0
        self.end_ns: int = 0
        self.cpu_start_ns: int = 0
        self.cpu_end_ns: int = 0

    def set_attrs(self, **attrs: Any) -> None:
        """Merge extra attribute tags into the span."""
        self.attrs.update(attrs)

    @property
    def duration_ns(self) -> int:
        """Wall-clock nanoseconds between enter and exit."""
        return self.end_ns - self.start_ns

    @property
    def cpu_ns(self) -> int:
        """CPU nanoseconds the owning thread spent inside the span.

        Measured with the tracer's CPU clock (default
        ``time.thread_time_ns``), so time spent blocked — on the GIL,
        a lock, or I/O — does not count; compare against
        :attr:`duration_ns` to see how much of a span's wall time was
        compute.
        """
        return self.cpu_end_ns - self.cpu_start_ns

    def __enter__(self) -> "Span":
        self.tracer._start(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.tracer._finish(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.duration_ns}ns)"
        )


class Tracer:
    """Collects nested spans with deterministic ids.

    Parameters
    ----------
    clock:
        Nanosecond wall clock (default ``time.perf_counter_ns``).
        Tests inject a fake for deterministic timings.
    cpu_clock:
        Nanosecond per-thread CPU clock (default
        ``time.thread_time_ns``); feeds :attr:`Span.cpu_ns`.
    memory_probe:
        Optional zero-argument callable returning currently allocated
        bytes (:class:`~repro.obs.profile.Profiler` attaches
        ``tracemalloc``'s).  When set, every span is tagged with
        ``mem_delta_kb`` — net bytes allocated while it was open.

    Examples
    --------
    >>> tracer = Tracer(clock=iter(range(0, 1000, 10)).__next__)
    >>> with tracer.span("outer", experiment="fig6"):
    ...     with tracer.span("inner", batch=0):
    ...         pass
    >>> [(s.span_id, s.parent_id, s.name) for s in tracer.finished()]
    [(0, None, 'outer'), (1, 0, 'inner')]
    """

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        cpu_clock: Callable[[], int] = time.thread_time_ns,
        memory_probe: Callable[[], int] | None = None,
    ) -> None:
        self._clock = clock
        self._cpu_clock = cpu_clock
        self.memory_probe = memory_probe
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._threads: dict[int, int] = {}
        self._finished: list[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """A new span, started when entered as a context manager."""
        return Span(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _start(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        ident = threading.get_ident()
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            span.thread_index = self._threads.setdefault(
                ident, len(self._threads)
            )
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        probe = self.memory_probe
        if probe is not None:
            span.attrs["_mem_start"] = probe()
        span.cpu_start_ns = self._cpu_clock()
        span.start_ns = self._clock()

    def _finish(self, span: Span) -> None:
        span.end_ns = self._clock()
        span.cpu_end_ns = self._cpu_clock()
        probe = self.memory_probe
        if probe is not None:
            start = span.attrs.pop("_mem_start", None)
            if start is not None:
                span.attrs["mem_delta_kb"] = round(
                    (probe() - start) / 1024.0, 3
                )
        stack = self._local.stack
        if not stack or stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} exited out of order "
                "(spans must strictly nest per thread)"
            )
        stack.pop()
        with self._lock:
            self._finished.append(span)

    def record_completed(
        self,
        name: str,
        *,
        start_ns: int,
        end_ns: int,
        cpu_ns: int = 0,
        parent: "Span | None" = None,
        worker: int | None = None,
        **attrs: Any,
    ) -> None:
        """Record a span that was measured elsewhere — typically in a
        worker *process* of the sharded sweep.

        Worker processes cannot open spans on the parent's tracer, but
        ``time.perf_counter_ns`` reads the same ``CLOCK_MONOTONIC``
        epoch across processes on Linux, so a worker self-times and
        ships ``(start_ns, end_ns, cpu_ns)`` back with its result; the
        parent replays them here.  Ids stay deterministic because the
        parent calls this sequentially in shard order (ids are
        allocated in call order, exactly like :meth:`_start`).

        ``worker`` is an opaque per-process key (a pid); each distinct
        key gets its own densified ``thread_index``, so shard spans
        land on their own lanes in the Chrome-trace export.  With
        ``parent=None`` the span attaches to the calling thread's
        innermost open span, as a normal child span would.
        """
        node = Span(self, name, attrs)
        ident = (
            threading.get_ident() if worker is None else -(int(worker) + 1)
        )
        with self._lock:
            node.span_id = self._next_id
            self._next_id += 1
            node.thread_index = self._threads.setdefault(
                ident, len(self._threads)
            )
        if parent is not None:
            node.parent_id = parent.span_id
        else:
            stack = getattr(self._local, "stack", None)
            node.parent_id = stack[-1].span_id if stack else None
        node.start_ns = start_ns
        node.end_ns = end_ns
        node.cpu_start_ns = 0
        node.cpu_end_ns = cpu_ns
        with self._lock:
            self._finished.append(node)

    def finished(self) -> tuple[Span, ...]:
        """Completed spans, ordered by start (= id) order."""
        with self._lock:
            return tuple(sorted(self._finished, key=lambda s: s.span_id))

    def clear(self) -> None:
        """Drop finished spans and restart id allocation."""
        with self._lock:
            self._finished.clear()
            self._next_id = 0
            self._threads.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(finished={len(self)})"


_ACTIVE: Tracer | None = None
"""The process-wide tracer; ``None`` means tracing is disabled."""


def use_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-wide tracer; return the old one.

    Pass ``None`` to disable tracing (the default state).  Call sites
    throughout the code base reach the installed tracer through
    :func:`span`, so installing one turns every instrumented phase on
    at once.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def current_tracer() -> Tracer | None:
    """The installed process-wide tracer, or ``None`` when disabled."""
    return _ACTIVE


def span(name: str, **attrs: Any) -> Span | _NullSpan:
    """A span on the installed tracer — :data:`NULL_SPAN` when disabled.

    This is the one function instrumented call sites use::

        with span("simulate.batch", batch=i):
            ...

    With no tracer installed the cost is one global read, one ``is
    None`` test and the no-op context protocol; the ``attrs`` dict is
    the only allocation, which is why instrumentation sits at phase /
    chunk granularity, never on per-request hot paths.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

TRACE_SCHEMA = "repro-trace/1"
"""Identifier stamped into exported Chrome-trace files."""


def _json_safe(value: Any) -> Any:
    """Attribute values as JSON scalars (non-scalars via ``str``)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def chrome_trace(
    spans: Iterable[Span], *, process_name: str = "repro"
) -> dict[str, Any]:
    """Spans as a Chrome trace-event JSON object.

    The payload loads directly in Perfetto (https://ui.perfetto.dev)
    or ``chrome://tracing``: one complete (``"ph": "X"``) event per
    span, timestamps and durations in microseconds, span ids and
    attributes under ``args``.  Extra top-level keys (``schema``,
    ``profile`` when profiling ran) are ignored by both viewers.
    """
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for s in sorted(spans, key=lambda s: s.span_id):
        args = {k: _json_safe(v) for k, v in s.attrs.items()}
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        args["cpu_us"] = s.cpu_ns / 1000.0
        events.append(
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": s.start_ns / 1000.0,
                "dur": s.duration_ns / 1000.0,
                "pid": 1,
                "tid": s.thread_index,
                "args": args,
            }
        )
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }


@dataclass(frozen=True)
class SpanNode:
    """One parsed span from a Chrome-trace export.

    ``attrs`` carries the original span attributes (``span_id`` /
    ``parent_id`` are lifted out into fields), so a parsed tree
    compares equal to the tree the exporter was fed.
    """

    span_id: int
    parent_id: int | None
    name: str
    start_us: float
    duration_us: float
    thread_index: int
    cpu_us: float = 0.0
    attrs: Mapping[str, Any] = field(default_factory=dict)


def parse_chrome_trace(payload: Mapping[str, Any]) -> tuple[SpanNode, ...]:
    """Rebuild :class:`SpanNode` rows from a :func:`chrome_trace` dump.

    Metadata events are skipped; rows come back in span-id order.
    Raises ``ValueError`` on a payload without ``traceEvents`` or with
    an event missing its ``span_id``.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome trace payload: missing traceEvents")
    nodes: list[SpanNode] = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        if "span_id" not in args:
            raise ValueError(f"span event {event.get('name')!r} lacks span_id")
        span_id = int(args.pop("span_id"))
        parent = args.pop("parent_id", None)
        cpu_us = args.pop("cpu_us", 0.0)
        nodes.append(
            SpanNode(
                span_id=span_id,
                parent_id=None if parent is None else int(parent),
                name=str(event["name"]),
                start_us=float(event["ts"]),
                duration_us=float(event["dur"]),
                thread_index=int(event.get("tid", 0)),
                cpu_us=float(cpu_us),
                attrs=args,
            )
        )
    nodes.sort(key=lambda n: n.span_id)
    return tuple(nodes)


def span_tree(
    nodes: Iterable[Span] | Iterable[SpanNode],
) -> dict[int | None, tuple[int, ...]]:
    """Parent id → child span ids (children in id order).

    Works on live :class:`Span` objects and parsed :class:`SpanNode`
    rows alike, so an export round-trip can assert tree equality:
    ``span_tree(tracer.finished()) == span_tree(parse_chrome_trace(p))``.
    """
    tree: dict[int | None, list[int]] = {}
    for node in nodes:
        tree.setdefault(node.parent_id, []).append(node.span_id)
    return {
        parent: tuple(sorted(children)) for parent, children in tree.items()
    }


def folded_stacks(
    spans: Iterable[Span] | Iterable[SpanNode], *, metric: str = "wall"
) -> list[str]:
    """Spans as folded flamegraph lines: ``root;child;leaf <self-µs>``.

    Each line is a semicolon-joined root-to-span name path with the
    span's *self* time (duration minus its children's durations) in
    integer microseconds; identical paths are aggregated.  The output
    is the input format of Brendan Gregg's ``flamegraph.pl`` and of
    speedscope, so ``flamegraph.pl trace.folded > flame.svg`` renders
    straight from :func:`write_folded`'s output.

    ``metric`` selects the timing column: ``"wall"`` (default) or
    ``"cpu"`` (per-thread CPU time) — a stack that shrinks between
    the two flamegraphs spent the difference blocked, not computing.
    """
    if metric not in ("wall", "cpu"):
        raise ValueError(f"unknown metric {metric!r}; choices: wall, cpu")
    rows = list(spans)
    by_id: dict[int, Any] = {}
    child_ns: dict[int, float] = {}
    for row in rows:
        by_id[row.span_id] = row
    for row in rows:
        if row.parent_id is not None and row.parent_id in by_id:
            child_ns[row.parent_id] = child_ns.get(row.parent_id, 0.0) + _dur_ns(row, metric)

    totals: dict[str, int] = {}
    for row in rows:
        path: list[str] = []
        cursor: Any | None = row
        seen: set[int] = set()
        while cursor is not None and cursor.span_id not in seen:
            seen.add(cursor.span_id)
            path.append(cursor.name)
            parent = cursor.parent_id
            cursor = by_id.get(parent) if parent is not None else None
        stack = ";".join(reversed(path))
        self_ns = max(_dur_ns(row, metric) - child_ns.get(row.span_id, 0.0), 0.0)
        totals[stack] = totals.get(stack, 0) + int(self_ns // 1000)
    return [f"{stack} {value}" for stack, value in sorted(totals.items())]


def _dur_ns(row: Any, metric: str = "wall") -> float:
    """Wall or CPU nanoseconds for a :class:`Span` or :class:`SpanNode`."""
    if isinstance(row, SpanNode):
        us = row.cpu_us if metric == "cpu" else row.duration_us
        return us * 1000.0
    return float(row.cpu_ns if metric == "cpu" else row.duration_ns)


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    *,
    profile: Mapping[str, Any] | None = None,
) -> None:
    """Write a Chrome-trace JSON file (optionally embedding a
    :meth:`~repro.obs.profile.Profiler.report` under ``"profile"``)."""
    payload = chrome_trace(spans)
    if profile is not None:
        payload["profile"] = dict(profile)
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def write_folded(
    path: str | Path, spans: Iterable[Span], *, metric: str = "wall"
) -> None:
    """Write folded flamegraph text next to a Chrome-trace export."""
    Path(path).write_text(
        "\n".join(folded_stacks(spans, metric=metric)) + "\n",
        encoding="utf-8",
    )
