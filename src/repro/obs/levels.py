"""Per-tree-level buffer statistics — the breakdown the paper implies.

The buffer model's whole mechanism is level-local: root-level pages
have access probability ~1 and are always resident, leaf pages are
numerous and cold, and pinning wins exactly when the top levels'
pages dominate the hit mass (§3.3, §5.5).  Aggregate ``BufferStats``
cannot show any of that, so this module provides the per-level table:
a :class:`LevelStatsTable` attaches to a
:class:`~repro.buffer.base.BufferPool` as its ``sink`` and attributes
every request to the tree level owning the requested page, resolved
from :attr:`~repro.rtree.TreeDescription.level_offsets`.

Sinks are duck-typed: any object with ``record_hit(page)``,
``record_pin_hit(page)`` and ``record_miss(page, evicted)`` methods
works (:class:`NullSink` is the do-nothing reference implementation,
used by the overhead guard).  The buffer pool calls the sink only when
one is attached, so the uninstrumented path stays a single ``is not
None`` test per request.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["LevelStats", "LevelStatsTable", "NullSink"]


class NullSink:
    """A sink that ignores every event.

    Attaching it must be indistinguishable (modulo a few percent of
    call overhead) from attaching nothing — the pytest guard in
    ``tests/obs/test_overhead.py`` holds this class to that claim.
    """

    __slots__ = ()

    def record_hit(self, page: object) -> None:
        """Ignore a buffer hit."""

    def record_pin_hit(self, page: object) -> None:
        """Ignore a pinned-page hit."""

    def record_miss(self, page: object, evicted: object) -> None:
        """Ignore a buffer miss."""


@dataclass(frozen=True)
class LevelStats:
    """Immutable counters for one tree level (a snapshot row).

    ``hits`` includes ``pin_hits`` — the two sum to the same "served
    from the buffer" notion ``BufferStats.hits`` uses — while
    ``pin_hits`` isolates the pinned-page share so the §5.5 pinning
    analysis can be read straight off the table.  ``evictions`` counts
    victims that *belonged to this level* (the evicted page's level,
    not the level of the page whose miss triggered the eviction).
    """

    level: int
    requests: int
    hits: int
    misses: int
    evictions: int
    pin_hits: int

    @property
    def hit_ratio(self) -> float:
        """Fraction of this level's requests served from the buffer."""
        return self.hits / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """The row as a JSON-ready mapping (schema v1 ``per_level``)."""
        return {
            "level": self.level,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pin_hits": self.pin_hits,
            "hit_ratio": self.hit_ratio,
        }


class LevelStatsTable:
    """A mutable per-level counter table usable as a buffer-pool sink.

    Parameters
    ----------
    level_offsets:
        Global node id of the first node of each level plus a final
        sentinel — exactly
        :attr:`~repro.rtree.TreeDescription.level_offsets`.  Page ids
        seen by the sink must be integers in ``[0, level_offsets[-1])``,
        the level-major ids the simulator uses.
    """

    __slots__ = ("_offsets", "_requests", "_hits", "_misses", "_evictions", "_pin_hits")

    def __init__(self, level_offsets: Sequence[int]) -> None:
        offsets = tuple(int(o) for o in level_offsets)
        if len(offsets) < 2 or offsets[0] != 0:
            raise ValueError(
                "level_offsets must start at 0 and include the final sentinel"
            )
        if any(b <= a for a, b in zip(offsets, offsets[1:])):
            raise ValueError("level_offsets must be strictly increasing")
        self._offsets = offsets
        n = len(offsets) - 1
        self._requests = [0] * n
        self._hits = [0] * n
        self._misses = [0] * n
        self._evictions = [0] * n
        self._pin_hits = [0] * n

    @property
    def n_levels(self) -> int:
        """Number of tree levels the table covers."""
        return len(self._offsets) - 1

    def level_of(self, page: int) -> int:
        """Tree level owning a global (level-major) node id."""
        if not 0 <= page < self._offsets[-1]:
            raise IndexError(f"page id {page} out of range")
        return bisect_right(self._offsets, page) - 1

    # ------------------------------------------------------------------
    # Sink protocol (called by BufferPool.request)
    # ------------------------------------------------------------------
    def record_hit(self, page: int) -> None:
        """Attribute an unpinned buffer hit to ``page``'s level."""
        level = bisect_right(self._offsets, page) - 1
        self._requests[level] += 1
        self._hits[level] += 1

    def record_pin_hit(self, page: int) -> None:
        """Attribute a pinned-page hit to ``page``'s level."""
        level = bisect_right(self._offsets, page) - 1
        self._requests[level] += 1
        self._hits[level] += 1
        self._pin_hits[level] += 1

    def record_miss(self, page: int, evicted: int | None) -> None:
        """Attribute a miss (and the victim's eviction, if any)."""
        level = bisect_right(self._offsets, page) - 1
        self._requests[level] += 1
        self._misses[level] += 1
        if evicted is not None:
            self._evictions[bisect_right(self._offsets, evicted) - 1] += 1

    # ------------------------------------------------------------------
    # Reading the table
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every counter (e.g. after buffer warm-up)."""
        for column in (
            self._requests,
            self._hits,
            self._misses,
            self._evictions,
            self._pin_hits,
        ):
            for i in range(len(column)):
                column[i] = 0

    def snapshot(self) -> tuple[LevelStats, ...]:
        """Immutable per-level rows, root (level 0) first."""
        return tuple(
            LevelStats(
                level=i,
                requests=self._requests[i],
                hits=self._hits[i],
                misses=self._misses[i],
                evictions=self._evictions[i],
                pin_hits=self._pin_hits[i],
            )
            for i in range(self.n_levels)
        )

    def totals(self) -> LevelStats:
        """Column sums as a single pseudo-row (``level`` is -1).

        By construction these equal the aggregate ``BufferStats``
        counters of the instrumented pool over the same window — the
        invariant ``validate_document`` re-checks on every export.
        """
        return LevelStats(
            level=-1,
            requests=sum(self._requests),
            hits=sum(self._hits),
            misses=sum(self._misses),
            evictions=sum(self._evictions),
            pin_hits=sum(self._pin_hits),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        totals = self.totals()
        return (
            f"LevelStatsTable(levels={self.n_levels}, "
            f"requests={totals.requests}, hits={totals.hits})"
        )
