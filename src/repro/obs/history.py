"""The benchmark-history ledger behind ``tools/bench_history.py``.

``BENCH_repro.json`` is a single snapshot: one run's kernel timings.
The ROADMAP's "as fast as the hardware allows" goal needs a
*trajectory* — successive runs appended to a durable record, and a
gate that fails when the latest run regresses against a baseline.
This module supplies both halves:

* **Ledger** — `append_entry` appends one schema-validated run to a
  JSON-Lines file (``BENCH_history.jsonl`` at the repo root, committed
  so the trajectory survives across PRs).  One line per run keeps
  diffs append-only and merges trivial.
* **Gate** — `compare_reports` checks the latest run against a chosen
  baseline per (kernel, sizes) pair, with per-metric noise tolerances:
  timing metrics are allowed a bounded *worsening factor* before the
  comparison counts as a regression.  `find_baseline` picks the most
  recent comparable entry (same smoke flag, overlapping kernels).

The bench *report* schema (``repro-bench/1``) is canonically validated
here by :func:`validate_bench_report`; ``benchmarks/bench_kernels.py``
delegates to it so the producer and the ledger can never drift apart.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "BENCH_SCHEMA",
    "Comparison",
    "DEFAULT_TOLERANCES",
    "HISTORY_SCHEMA",
    "MetricDelta",
    "RECORD_FIELDS",
    "append_entry",
    "compare_reports",
    "find_baseline",
    "history_entry",
    "load_history",
    "record_key",
    "run_id_for",
    "validate_bench_report",
    "validate_entry",
]

BENCH_SCHEMA = "repro-bench/1"
"""Schema tag of one benchmark run (``BENCH_repro.json``)."""

HISTORY_SCHEMA = "repro-bench-history/1"
"""Schema tag of one ledger line (``BENCH_history.jsonl``)."""

RECORD_FIELDS = {
    "kernel": str,
    "n_rects": int,
    "n_points": int,
    "seconds": float,
    "ops_per_s": float,
    "unit": str,
    "dense_seconds": float,
    "speedup_vs_dense": float,
}
"""Required fields (and types) of every record in a bench report."""

DEFAULT_TOLERANCES: dict[str, float] = {
    "seconds": 1.35,
    "ops_per_s": 1.35,
    "speedup_vs_dense": 1.3,
}
"""Per-metric maximum worsening factor before a delta counts as a
regression.  ``seconds`` may grow by the factor; throughput-like
metrics (``ops_per_s``, ``speedup_vs_dense``) may shrink by it.  The
defaults absorb ordinary machine noise (run-to-run jitter of these
kernels is a few percent on an idle host, so 1.3–1.35× leaves ample
headroom) while catching any real algorithmic regression, which
historically shows up as ≥ 2×.  Measured trajectory across the
committed ledger: every same-host kernel ratio stayed within 1.15×
except where the *baseline* side legitimately changed (e.g. the
stabber work hint speeding up the online engine) — those land as a
fresh ledger entry, not a loosened gate."""

_LOWER_IS_BETTER = frozenset({"seconds"})
_HIGHER_IS_BETTER = frozenset({"ops_per_s", "speedup_vs_dense"})


def validate_bench_report(report: object) -> list[str]:
    """Schema errors in a parsed bench report (empty list = valid)."""
    errors: list[str] = []
    if not isinstance(report, Mapping):
        return ["report must be a JSON object"]
    if report.get("schema") != BENCH_SCHEMA:
        errors.append(
            f"schema must be {BENCH_SCHEMA!r}, got {report.get('schema')!r}"
        )
    if not isinstance(report.get("seed"), int):
        errors.append("seed must be an integer")
    if not isinstance(report.get("smoke"), bool):
        errors.append("smoke must be a boolean")
    records = report.get("records")
    if not isinstance(records, list) or not records:
        return errors + ["records must be a non-empty list"]
    for i, record in enumerate(records):
        if not isinstance(record, Mapping):
            errors.append(f"records[{i}] must be an object")
            continue
        for fld, kind in RECORD_FIELDS.items():
            value = record.get(fld)
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(
                    value, bool
                )
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                errors.append(
                    f"records[{i}].{fld} must be {kind.__name__}, "
                    f"got {value!r}"
                )
        for fld in ("seconds", "dense_seconds", "speedup_vs_dense"):
            value = record.get(fld)
            if isinstance(value, (int, float)) and value <= 0:
                errors.append(f"records[{i}].{fld} must be positive")
    return errors


def record_key(record: Mapping[str, Any]) -> tuple[str, int, int]:
    """The identity of one benchmark measurement.

    Two records are comparable only when kernel *and* problem sizes
    match — a smoke run's timings say nothing about a full run's.
    """
    return (
        str(record["kernel"]),
        int(record["n_rects"]),
        int(record["n_points"]),
    )


def run_id_for(report: Mapping[str, Any]) -> str:
    """A deterministic run id: content hash of the report's records.

    Used when the caller supplies no explicit id; identical results
    hash identically, so re-appending the same run is visible in the
    ledger rather than disguised by a fresh label.
    """
    canonical = json.dumps(report.get("records"), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def history_entry(
    report: Mapping[str, Any],
    *,
    run_id: str | None = None,
    recorded_at: str | None = None,
    note: str = "",
) -> dict[str, Any]:
    """One validated ledger line for a bench report.

    ``recorded_at`` is a caller-supplied ISO-8601 timestamp (the tool
    stamps UTC now; tests pass fixed values so entries stay
    deterministic).
    """
    errors = validate_bench_report(report)
    if errors:
        raise ValueError(
            "refusing to append an invalid bench report: " + "; ".join(errors)
        )
    return {
        "schema": HISTORY_SCHEMA,
        "run_id": run_id or run_id_for(report),
        "recorded_at": recorded_at,
        "note": str(note),
        "smoke": bool(report["smoke"]),
        "seed": int(report["seed"]),
        "records": [dict(r) for r in report["records"]],
    }


def validate_entry(entry: object) -> list[str]:
    """Schema errors in one parsed ledger line (empty list = valid)."""
    if not isinstance(entry, Mapping):
        return ["entry must be a JSON object"]
    errors: list[str] = []
    if entry.get("schema") != HISTORY_SCHEMA:
        errors.append(
            f"schema must be {HISTORY_SCHEMA!r}, got {entry.get('schema')!r}"
        )
    if not isinstance(entry.get("run_id"), str) or not entry.get("run_id"):
        errors.append("run_id must be a non-empty string")
    recorded = entry.get("recorded_at")
    if recorded is not None and not isinstance(recorded, str):
        errors.append("recorded_at must be a string or null")
    as_report = {
        "schema": BENCH_SCHEMA,
        "seed": entry.get("seed"),
        "smoke": entry.get("smoke"),
        "records": entry.get("records"),
    }
    errors.extend(validate_bench_report(as_report))
    return errors


def append_entry(path: str | Path, entry: Mapping[str, Any]) -> None:
    """Validate and append one ledger line (creates the file)."""
    errors = validate_entry(entry)
    if errors:
        raise ValueError("invalid history entry: " + "; ".join(errors))
    line = json.dumps(entry, sort_keys=True)
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """All ledger entries, oldest first; raises on any invalid line."""
    entries: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from None
        errors = validate_entry(entry)
        if errors:
            raise ValueError(f"{path}:{lineno}: " + "; ".join(errors))
        entries.append(entry)
    return entries


def find_baseline(
    entries: Sequence[Mapping[str, Any]],
    report: Mapping[str, Any],
    *,
    baseline_run_id: str | None = None,
) -> Mapping[str, Any] | None:
    """The ledger entry to gate ``report`` against.

    With ``baseline_run_id``, the entry with that id (raises if
    absent).  Otherwise the *most recent* entry whose smoke flag
    matches and which shares at least one (kernel, sizes) key with the
    report — smoke runs gate against smoke history, full runs against
    full history.  ``None`` when no comparable entry exists (a first
    run passes trivially).
    """
    if baseline_run_id is not None:
        for entry in entries:
            if entry.get("run_id") == baseline_run_id:
                return entry
        raise ValueError(f"no history entry with run_id {baseline_run_id!r}")
    want_smoke = bool(report["smoke"])
    keys = {record_key(r) for r in report["records"]}
    for entry in reversed(entries):
        if bool(entry.get("smoke")) != want_smoke:
            continue
        if keys & {record_key(r) for r in entry["records"]}:
            return entry
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one kernel, baseline vs latest."""

    kernel: str
    metric: str
    baseline: float
    latest: float
    worsening: float
    """Factor by which the metric got worse (1.0 = unchanged; for
    ``seconds`` this is ``latest / baseline``, for throughput metrics
    ``baseline / latest``)."""
    tolerance: float
    regressed: bool

    def describe(self) -> str:
        """One human-readable gate line."""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.kernel}.{self.metric}: {self.baseline:.6g} -> "
            f"{self.latest:.6g} ({self.worsening:.2f}x worse, "
            f"tolerance {self.tolerance:.2f}x) {verdict}"
        )


@dataclass(frozen=True)
class Comparison:
    """The gate's full verdict for one latest-vs-baseline check."""

    baseline_run_id: str
    deltas: tuple[MetricDelta, ...]
    skipped: tuple[str, ...]
    """Kernels present in only one of the two reports (size or kernel
    mismatch) — reported, never silently dropped."""

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        """The deltas that exceeded their tolerance."""
        return tuple(d for d in self.deltas if d.regressed)

    @property
    def ok(self) -> bool:
        """True when no compared metric regressed."""
        return not self.regressions


def compare_reports(
    baseline: Mapping[str, Any],
    latest: Mapping[str, Any],
    *,
    tolerances: Mapping[str, float] | None = None,
) -> Comparison:
    """Gate ``latest`` against ``baseline``, metric by metric.

    ``baseline`` is a ledger entry or a bench report (both carry
    ``records``); ``latest`` likewise.  Only (kernel, sizes) pairs
    present in both are compared; the rest land in ``skipped``.
    """
    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        unknown = set(tolerances) - set(tols)
        if unknown:
            raise ValueError(f"unknown tolerance metric(s): {sorted(unknown)}")
        tols.update(tolerances)

    base_records = {record_key(r): r for r in baseline["records"]}
    late_records = {record_key(r): r for r in latest["records"]}
    deltas: list[MetricDelta] = []
    for key in sorted(base_records.keys() & late_records.keys()):
        base, late = base_records[key], late_records[key]
        for metric, tolerance in sorted(tols.items()):
            before, after = float(base[metric]), float(late[metric])
            if metric in _LOWER_IS_BETTER:
                worsening = after / before if before > 0 else float("inf")
            else:
                worsening = before / after if after > 0 else float("inf")
            deltas.append(
                MetricDelta(
                    kernel=key[0],
                    metric=metric,
                    baseline=before,
                    latest=after,
                    worsening=worsening,
                    tolerance=float(tolerance),
                    regressed=worsening > tolerance,
                )
            )
    skipped = sorted(
        f"{k[0]}[{k[1]}x{k[2]}]"
        for k in base_records.keys() ^ late_records.keys()
    )
    return Comparison(
        baseline_run_id=str(baseline.get("run_id", "<report>")),
        deltas=tuple(deltas),
        skipped=tuple(skipped),
    )
