"""A minimal metrics registry: named counters, gauges, and timers.

The paper's central claim is that a single aggregate number (node
accesses per query) hides the behaviour that actually matters (which
*pages* hit the buffer).  The same is true of the reproduction's own
instrumentation: one ``BufferStats`` object cannot say where time went
or which tree level absorbed the hits.  :class:`MetricsRegistry` is
the sink everything observable funnels into — simulation phases record
timers, buffer totals land in counters, configuration lands in gauges
— and :func:`MetricsRegistry.to_dict` renders the whole registry as a
plain JSON-ready mapping for the ``--metrics-out`` export.

The registry is deliberately tiny: no labels, no exposition formats,
no background threads.  Metrics are plain attributes mutated inline,
so attaching a registry costs one dict lookup per *named metric*, not
per buffer request — the per-request path uses the dedicated
:class:`~repro.obs.levels.LevelStatsTable` sink instead.
"""

from __future__ import annotations

import time
from typing import Iterator

__all__ = ["Counter", "Gauge", "MetricsRegistry", "Timer"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time numeric metric (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, value={self.value})"


class Timer:
    """Accumulated wall-clock seconds over one or more observations.

    Timing uses ``time.perf_counter_ns``: monotonic (immune to NTP
    steps and wall-clock adjustments, unlike ``time.time``) and
    integer nanoseconds, so interval subtraction is exact and cannot
    go negative.
    """

    __slots__ = ("name", "total_seconds", "count", "_started_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0
        self._started_ns: int | None = None

    def record(self, seconds: float) -> None:
        """Add one externally measured duration."""
        if seconds < 0:
            raise ValueError(f"timer {self.name!r} got a negative duration")
        self.total_seconds += seconds
        self.count += 1

    def __enter__(self) -> "Timer":
        self._started_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        started = self._started_ns
        self._started_ns = None
        if started is not None:
            self.record((time.perf_counter_ns() - started) / 1e9)

    @property
    def mean_seconds(self) -> float:
        """Average duration per observation (0 when never recorded)."""
        return self.total_seconds / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Timer({self.name!r}, total_seconds={self.total_seconds:.6f}, "
            f"count={self.count})"
        )


class MetricsRegistry:
    """Named metrics, created on first use.

    ``counter`` / ``gauge`` / ``timer`` are get-or-create: asking for
    the same name twice returns the same object, asking for a name
    already used by a *different* metric kind raises ``ValueError``
    (one namespace prevents ``buffer.requests`` meaning two things).

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("buffer.requests").inc(3)
    >>> with registry.timer("simulate.warmup"):
    ...     pass
    >>> registry.to_dict()["counters"]["buffer.requests"]
    3
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Timer] = {}

    def _get_or_create(self, name: str, kind: type) -> Counter | Gauge | Timer:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created if absent."""
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created if absent."""
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        """The timer called ``name``, created if absent."""
        return self._get_or_create(name, Timer)  # type: ignore[return-value]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def to_dict(self) -> dict[str, dict[str, object]]:
        """The registry as a JSON-ready mapping, keys sorted.

        Shape: ``{"counters": {name: int}, "gauges": {name: float},
        "timers": {name: {"total_seconds": float, "count": int}}}``.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        timers: dict[str, dict[str, float | int]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                timers[name] = {
                    "total_seconds": metric.total_seconds,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "timers": timers}
