"""Observability: metrics registry, per-level buffer stats, traces.

The paper's thesis is that one aggregate number (node accesses) hides
the behaviour that decides performance (which pages the buffer
serves).  This package applies the same lesson to the reproduction
itself:

* :class:`MetricsRegistry` — named counters / gauges / timers;
* :class:`LevelStatsTable` — a buffer-pool sink attributing every
  request to the owning tree level via ``TreeDescription.level_offsets``;
* :class:`QueryTrace` — a ring buffer of the last K queries' touched
  node ids and miss sets;
* :class:`LatencyRecorder` — a thread-safe per-query latency
  reservoir with exact nearest-rank percentiles and a log-spaced
  histogram, feeding the serving engine's ``serving`` export section;
* :class:`TelemetrySink` / :class:`SLOMonitor` — live serving
  telemetry: fixed-interval sampling of a running ``QueryService``
  into sliding windows (per-shard hit-ratio deltas, queue depth,
  windowed percentiles), error-budget burn accounting, and the
  streaming ``repro-telemetry/1`` JSONL format;
* :class:`Tracer` / :func:`span` — nested, attributed wall-clock spans
  with Chrome-trace (Perfetto) and folded-flamegraph exporters behind
  ``repro-experiments --trace-out``;
* :class:`Profiler` — opt-in ``tracemalloc`` allocation profiling with
  a top-N-allocation-sites report (``--profile``);
* :mod:`repro.obs.export` — the versioned ``repro-metrics`` JSON
  schema behind ``repro-experiments --metrics-out``;
* :mod:`repro.obs.history` — the ``BENCH_history.jsonl`` benchmark
  ledger and regression gate behind ``tools/bench_history.py``.

Everything here is optional: with no registry attached, the simulator
and buffer pools run exactly the uninstrumented hot path (one ``is
not None`` test per request), which ``tests/obs/test_overhead.py``
guards; with no tracer installed, :func:`span` hands back a shared
no-op singleton, which ``benchmarks/test_obs_overhead.py`` holds to
the same standard.
"""

from __future__ import annotations

from .export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    experiment_document,
    load_report,
    metrics_report,
    serving_section,
    simulation_section,
    sweep_section,
    validate_document,
    validate_report,
    write_report,
)
from .history import (
    Comparison,
    MetricDelta,
    append_entry,
    compare_reports,
    find_baseline,
    history_entry,
    load_history,
    validate_bench_report,
)
from .latency import LatencyRecorder
from .levels import LevelStats, LevelStatsTable, NullSink
from .profile import AllocationSite, Profiler
from .registry import Counter, Gauge, MetricsRegistry, Timer
from .spans import (
    NULL_SPAN,
    Span,
    SpanNode,
    Tracer,
    chrome_trace,
    current_tracer,
    folded_stacks,
    parse_chrome_trace,
    span,
    span_tree,
    use_tracer,
    write_chrome_trace,
    write_folded,
)
from .telemetry import (
    TELEMETRY_SCHEMA,
    SLOMonitor,
    TelemetrySink,
    read_telemetry,
    validate_telemetry,
)
from .trace import QueryTrace, QueryTraceEntry

__all__ = [
    "AllocationSite",
    "Comparison",
    "Counter",
    "Gauge",
    "LatencyRecorder",
    "LevelStats",
    "LevelStatsTable",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSink",
    "Profiler",
    "QueryTrace",
    "QueryTraceEntry",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "SLOMonitor",
    "Span",
    "SpanNode",
    "TELEMETRY_SCHEMA",
    "TelemetrySink",
    "Timer",
    "Tracer",
    "append_entry",
    "chrome_trace",
    "compare_reports",
    "current_tracer",
    "experiment_document",
    "find_baseline",
    "folded_stacks",
    "history_entry",
    "load_history",
    "load_report",
    "metrics_report",
    "parse_chrome_trace",
    "read_telemetry",
    "serving_section",
    "simulation_section",
    "span",
    "span_tree",
    "sweep_section",
    "use_tracer",
    "validate_bench_report",
    "validate_document",
    "validate_report",
    "validate_telemetry",
    "write_chrome_trace",
    "write_folded",
    "write_report",
]
