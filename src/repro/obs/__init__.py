"""Observability: metrics registry, per-level buffer stats, traces.

The paper's thesis is that one aggregate number (node accesses) hides
the behaviour that decides performance (which pages the buffer
serves).  This package applies the same lesson to the reproduction
itself:

* :class:`MetricsRegistry` — named counters / gauges / timers;
* :class:`LevelStatsTable` — a buffer-pool sink attributing every
  request to the owning tree level via ``TreeDescription.level_offsets``;
* :class:`QueryTrace` — a ring buffer of the last K queries' touched
  node ids and miss sets;
* :mod:`repro.obs.export` — the versioned ``repro-metrics`` JSON
  schema behind ``repro-experiments --metrics-out``.

Everything here is optional: with no registry attached, the simulator
and buffer pools run exactly the uninstrumented hot path (one ``is
not None`` test per request), which ``tests/obs/test_overhead.py``
guards.
"""

from __future__ import annotations

from .export import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    experiment_document,
    load_report,
    metrics_report,
    simulation_section,
    validate_document,
    validate_report,
    write_report,
)
from .levels import LevelStats, LevelStatsTable, NullSink
from .registry import Counter, Gauge, MetricsRegistry, Timer
from .trace import QueryTrace, QueryTraceEntry

__all__ = [
    "Counter",
    "Gauge",
    "LevelStats",
    "LevelStatsTable",
    "MetricsRegistry",
    "NullSink",
    "QueryTrace",
    "QueryTraceEntry",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Timer",
    "experiment_document",
    "load_report",
    "metrics_report",
    "simulation_section",
    "validate_document",
    "validate_report",
    "write_report",
]
