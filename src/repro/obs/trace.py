"""A fixed-size ring buffer of recent query traces.

Per-level counters say *how much* the buffer hit; a trace says *what a
query actually touched*.  :class:`QueryTrace` keeps the last ``K``
queries' touched node ids and miss sets, which is enough to answer
"why was this query expensive" (its misses) and "what does a typical
root-to-leaf walk request" without retaining the full query stream.

Recording is deterministic — no sampling, the last ``K`` queries are
kept verbatim (RL007: introducing a random sampler here would make
trace output irreproducible across runs with the same seed).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["QueryTrace", "QueryTraceEntry"]


@dataclass(frozen=True)
class QueryTraceEntry:
    """What one query did to the buffer."""

    index: int
    """0-based position of the query in the run's query stream."""
    touched: tuple[int, ...]
    """Global node ids requested, in request (top-down) order."""
    missed: tuple[int, ...]
    """The subset of ``touched`` that missed the buffer (disk reads)."""

    def as_dict(self) -> dict[str, object]:
        """The entry as a JSON-ready mapping (schema v1 ``trace``)."""
        return {
            "query": self.index,
            "touched": list(self.touched),
            "missed": list(self.missed),
        }


class QueryTrace:
    """Ring buffer retaining the last ``capacity`` query traces.

    Examples
    --------
    >>> trace = QueryTrace(2)
    >>> for ids in ([0, 1], [0, 2], [0, 3]):
    ...     trace.record(ids, [ids[-1]])
    >>> [e.index for e in trace.entries()]
    [1, 2]
    """

    __slots__ = ("capacity", "_entries", "_total")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be at least 1")
        self.capacity = capacity
        self._entries: list[QueryTraceEntry | None] = [None] * capacity
        self._total = 0

    @property
    def total_recorded(self) -> int:
        """Number of queries ever recorded (>= ``len(self)``)."""
        return self._total

    def __len__(self) -> int:
        """Number of entries currently retained."""
        return min(self._total, self.capacity)

    def record(
        self, touched: Iterable[int], missed: Iterable[int]
    ) -> QueryTraceEntry:
        """Append one query's trace, evicting the oldest when full."""
        entry = QueryTraceEntry(
            index=self._total,
            touched=tuple(int(i) for i in touched),
            missed=tuple(int(i) for i in missed),
        )
        self._entries[self._total % self.capacity] = entry
        self._total += 1
        return entry

    def entries(self) -> tuple[QueryTraceEntry, ...]:
        """Retained entries, oldest first."""
        if self._total <= self.capacity:
            kept = self._entries[: self._total]
        else:
            pivot = self._total % self.capacity
            kept = self._entries[pivot:] + self._entries[:pivot]
        return tuple(e for e in kept if e is not None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryTrace(capacity={self.capacity}, retained={len(self)}, "
            f"total_recorded={self._total})"
        )
