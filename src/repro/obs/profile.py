"""Allocation profiling on top of span tracing (``--profile``).

Spans say where wall-clock went; this module says where *memory* went.
:class:`Profiler` drives :mod:`tracemalloc`:

* while profiling, every span of an attached :class:`~repro.obs.spans.Tracer`
  is tagged with ``mem_delta_kb`` — net bytes allocated while the span
  was open (the tracer's ``memory_probe`` hook);
* :meth:`Profiler.report` renders a top-N-allocation-sites table
  (``file:line``, kilobytes, block count) plus the current/peak traced
  totals, embedded under ``"profile"`` in the Chrome-trace export and
  printed by the runner.

Profiling is strictly opt-in: ``tracemalloc`` slows allocation-heavy
code by an integer factor, so nothing here is touched unless the user
passes ``--profile`` (or constructs a :class:`Profiler` directly).
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any

from .spans import Tracer

__all__ = ["AllocationSite", "PROFILE_SCHEMA", "Profiler"]

PROFILE_SCHEMA = "repro-profile/1"
"""Schema tag of :meth:`Profiler.report`'s payload."""


@dataclass(frozen=True)
class AllocationSite:
    """One source line's live allocations at snapshot time."""

    site: str
    """``path/to/file.py:lineno`` of the allocating statement."""
    kb: float
    """Kilobytes currently allocated from this site."""
    blocks: int
    """Number of live allocation blocks from this site."""

    def as_dict(self) -> dict[str, Any]:
        """The site as a JSON-ready mapping."""
        return {"site": self.site, "kb": self.kb, "blocks": self.blocks}


def _current_bytes() -> int:
    """Currently traced allocated bytes (the tracer's memory probe)."""
    return tracemalloc.get_traced_memory()[0]


class Profiler:
    """Owns the ``tracemalloc`` lifecycle for one profiled run.

    Examples
    --------
    ::

        profiler = Profiler(top_n=10)
        profiler.start()
        profiler.attach(tracer)        # spans now carry mem_delta_kb
        ...                            # run the workload
        report = profiler.report()     # top allocation sites
        profiler.stop()

    ``start``/``stop`` nest politely: if ``tracemalloc`` was already
    tracing (e.g. ``PYTHONTRACEMALLOC=1``), ``stop`` leaves it running.
    """

    def __init__(self, top_n: int = 15) -> None:
        if top_n < 1:
            raise ValueError("top_n must be at least 1")
        self.top_n = top_n
        self._owns_tracemalloc = False
        self._attached: list[Tracer] = []

    @property
    def active(self) -> bool:
        """Whether ``tracemalloc`` is currently tracing."""
        return tracemalloc.is_tracing()

    def start(self) -> "Profiler":
        """Begin tracing allocations (idempotent)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        return self

    def attach(self, tracer: Tracer) -> None:
        """Tag every span of ``tracer`` with ``mem_delta_kb``."""
        tracer.memory_probe = _current_bytes
        self._attached.append(tracer)

    def top_sites(self) -> tuple[AllocationSite, ...]:
        """The ``top_n`` allocation sites by live size, largest first."""
        if not tracemalloc.is_tracing():
            return ()
        snapshot = tracemalloc.take_snapshot().filter_traces(
            (
                tracemalloc.Filter(False, tracemalloc.__file__),
                tracemalloc.Filter(False, "<frozen importlib._bootstrap>"),
            )
        )
        sites = []
        for stat in snapshot.statistics("lineno")[: self.top_n]:
            frame = stat.traceback[0]
            sites.append(
                AllocationSite(
                    site=f"{frame.filename}:{frame.lineno}",
                    kb=round(stat.size / 1024.0, 3),
                    blocks=stat.count,
                )
            )
        return tuple(sites)

    def report(self) -> dict[str, Any]:
        """The JSON-ready profile payload (``"profile"`` in exports)."""
        if tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
        else:
            current = peak = 0
        return {
            "schema": PROFILE_SCHEMA,
            "tracing": tracemalloc.is_tracing(),
            "current_kb": round(current / 1024.0, 3),
            "peak_kb": round(peak / 1024.0, 3),
            "top_n": self.top_n,
            "top_allocations": [s.as_dict() for s in self.top_sites()],
        }

    def stop(self) -> None:
        """Stop tracing (if this profiler started it) and detach tracers."""
        for tracer in self._attached:
            tracer.memory_probe = None
        self._attached.clear()
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
