"""Live serving telemetry: windowed time-series over a running service.

The paper's central quantity — buffer hit ratio as a function of
buffer size (Fig 6, Eq. 5/6) — is a *steady-state* prediction, but
the serving engine is an online system: the LRU warms, Zipf hot keys
settle, queue depth breathes with the arrival process.  A terminal
aggregate cannot show whether the run ever *reached* the predicted
steady state, only where it ended.  This module samples the running
service at a fixed interval into fixed-size sliding windows so the
approach to Eq. 5/6's prediction is itself observable, tick by tick.

Three pieces:

* :class:`TelemetrySink` — samples a ``QueryService`` (duck-typed, see
  below) every ``interval_s`` seconds: per-shard ``BufferStats``
  deltas (requests, hits, evictions → a windowed hit ratio),
  admission-queue depth, micro-batch occupancy, and windowed
  p50/p95/p99 latency from an atomic
  :meth:`~repro.obs.latency.LatencyRecorder.snapshot_and_reset`.
  Each tick streams out as one JSON line.
* :class:`SLOMonitor` — a deterministic error-budget account over a
  target p99 and/or hit-ratio floor: each traffic-carrying tick either
  meets the targets or burns budget; the monitor reports cumulative
  and windowed burn rates (burn rate 1.0 = violating at exactly the
  budgeted fraction of ticks).
* The ``repro-telemetry/1`` stream format — line 1 is a header
  (config, shard capacities, the Eq. 5/6 model-predicted hit ratio,
  SLO targets), every further line is a tick.  :func:`read_telemetry`
  loads and :func:`validate_telemetry` re-derives every invariant:
  contiguous sequence numbers, per-shard delta sums equal to the
  aggregate delta, cumulative rows additive tick over tick,
  ``hits + misses == requests`` at every level, window sums equal to
  the trailing tick deltas.

Layering: ``repro.obs`` is a leaf package, so the sink does not import
the serving or buffer layers.  It speaks to the service through a
small duck-typed protocol — ``pool.shard_stats()`` /
``pool.shard_capacities()`` / ``pool.capacity`` / ``pool.n_shards`` /
``pool.policy``, ``queries_served`` / ``batches_served`` /
``queue_depth`` — mirroring how ``BufferPool.request`` treats its
stats sink.  The model-predicted hit ratio is passed *in* as a plain
number by the experiments layer (which owns :func:`repro.model.
buffer_model`); the sink records it in the header, it never computes
it.

Counter discipline: the sink samples *cumulative* pool counters and
differences consecutive snapshots.  If a counter reset lands between
ticks (``reset_measurement()`` at the warm-up boundary), a shard's
delta would go negative; the sink then **rebases** — treats the
current snapshot as the delta and flags the tick ``rebased`` — so the
stream stays monotone and the validator knows to skip the additivity
check for exactly that tick.  The final tick of a drained run
therefore carries cumulative per-shard counters equal to
``aggregate_stats()`` exactly, which is the reconciliation the
metrics-export validator enforces against the ``serving`` section.

Thread discipline (checked under ``REPRO_SANITIZE=1``): all window
and cursor state is guarded by one sink lock; the hot-path hook
:meth:`TelemetrySink.observe_batch` touches only the internal
:class:`~repro.obs.latency.LatencyRecorder` (its own lock), so a
service thread never contends with the ticker for the window state.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections.abc import Callable, Mapping
from typing import IO, Any

import numpy as np

from .latency import LatencyRecorder

__all__ = [
    "TELEMETRY_SCHEMA",
    "SLOMonitor",
    "TelemetrySink",
    "read_telemetry",
    "validate_telemetry",
]

TELEMETRY_SCHEMA = "repro-telemetry/1"

#: Counter fields sampled per shard, in export order.
_FIELDS = ("requests", "hits", "misses", "evictions")

_NS_PER_US = 1_000.0
_NS_PER_S = 1e9

#: Tolerance for re-derived ratios in the validator (pure float
#: round-trip noise; the underlying counts are exact integers).
_RATIO_TOL = 1e-9


class SLOMonitor:
    """Error-budget accounting over a p99 target and a hit-ratio floor.

    Each *counted* tick (one that carried traffic) either meets every
    configured target or is a **bad tick**.  With an error budget
    ``budget`` (the allowed fraction of bad ticks), the burn rate is
    ``bad_fraction / budget`` — 1.0 means violating at exactly the
    budgeted rate, above 1.0 the budget is being exhausted.

    **Alerting is multiwindow**: the monitor keeps a *fast* trailing
    window (default 5 ticks) and a *slow* one (default 60 ticks) and
    raises ``alerting`` only when **both** burn above 1.0 — the
    standard multiwindow multi-burn-rate recipe.  The fast window
    alone is noisy (one bad tick in five burns at 20× budget); the
    slow window alone pages long after the incident started; requiring
    both means "it is bad *right now* and it has been bad for a
    while".  The cumulative burn (``budget_exhausted``) is still
    reported for whole-run accounting, but it is no longer the alert
    signal — a run that burned its budget in a warm-up spike would
    otherwise page forever.

    Deterministic and single-threaded by design: the monitor holds no
    lock and must only be driven by the sink's tick path (which holds
    the sink lock).  Ticks with no traffic are not counted — an idle
    service is neither meeting nor missing its SLO.
    """

    def __init__(
        self,
        *,
        p99_target_us: float | None = None,
        hit_ratio_floor: float | None = None,
        budget: float = 0.01,
        window: int = 20,
        fast_window: int = 5,
        slow_window: int = 60,
    ) -> None:
        if p99_target_us is None and hit_ratio_floor is None:
            raise ValueError(
                "an SLOMonitor needs at least one target "
                "(p99_target_us and/or hit_ratio_floor)"
            )
        if p99_target_us is not None and p99_target_us <= 0:
            raise ValueError("p99_target_us must be positive")
        if hit_ratio_floor is not None and not 0.0 <= hit_ratio_floor <= 1.0:
            raise ValueError("hit_ratio_floor must be in [0, 1]")
        if not 0.0 < budget <= 1.0:
            raise ValueError("budget must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if fast_window < 1:
            raise ValueError("fast_window must be >= 1")
        if slow_window < fast_window:
            raise ValueError("slow_window must be >= fast_window")
        self.p99_target_us = p99_target_us
        self.hit_ratio_floor = hit_ratio_floor
        self.budget = float(budget)
        self.window = int(window)
        self.fast_window = int(fast_window)
        self.slow_window = int(slow_window)
        self._history = max(self.window, self.slow_window)
        self._ticks = 0
        self._bad = 0
        self._recent: list[int] = []

    @property
    def targets(self) -> dict[str, Any]:
        """The header-facing target block."""
        return {
            "p99_target_us": self.p99_target_us,
            "hit_ratio_floor": self.hit_ratio_floor,
            "budget": self.budget,
            "window": self.window,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
        }

    def observe(
        self,
        *,
        p99_us: float | None,
        hit_ratio: float | None,
        requests: int,
    ) -> dict[str, Any]:
        """Account one tick; returns the tick's SLO status block.

        ``p99_us`` is the tick's windowed p99 (None when no latency
        samples landed this tick), ``hit_ratio`` the windowed hit
        ratio (None when the window carried no requests), ``requests``
        the tick's delta request count.  A target with no signal this
        tick is treated as met — absence of evidence never burns
        budget.
        """
        counted = requests > 0
        p99_violation = (
            self.p99_target_us is not None
            and p99_us is not None
            and p99_us > self.p99_target_us
        )
        hit_violation = (
            self.hit_ratio_floor is not None
            and hit_ratio is not None
            and hit_ratio < self.hit_ratio_floor
        )
        bad = counted and (p99_violation or hit_violation)
        if counted:
            self._ticks += 1
            self._bad += 1 if bad else 0
            self._recent.append(1 if bad else 0)
            while len(self._recent) > self._history:
                self._recent.pop(0)
        return {
            "counted": counted,
            "bad": bad,
            "p99_violation": bool(counted and p99_violation),
            "hit_ratio_violation": bool(counted and hit_violation),
            **self.summary(),
        }

    def _trailing_burn(self, length: int) -> float:
        """Burn rate over the trailing ``length`` counted ticks."""
        recent = self._recent[-length:]
        if not recent:
            return 0.0
        return (sum(recent) / len(recent)) / self.budget

    def summary(self) -> dict[str, Any]:
        """Budget accounting (also embedded in every tick).

        ``alerting`` is the page signal: both the fast and the slow
        trailing windows burning above 1.0.  The cumulative
        ``budget_exhausted`` stays for whole-run verdicts.
        """
        bad_fraction = self._bad / self._ticks if self._ticks else 0.0
        burn_rate = bad_fraction / self.budget
        fast_burn = self._trailing_burn(self.fast_window)
        slow_burn = self._trailing_burn(self.slow_window)
        return {
            "ticks": self._ticks,
            "bad_ticks": self._bad,
            "bad_fraction": bad_fraction,
            "burn_rate": burn_rate,
            "window_burn_rate": self._trailing_burn(self.window),
            "fast_burn_rate": fast_burn,
            "slow_burn_rate": slow_burn,
            "alerting": fast_burn > 1.0 and slow_burn > 1.0,
            "budget_exhausted": burn_rate > 1.0,
        }


class TelemetrySink:
    """Samples a running service into a streaming JSONL time-series.

    Parameters
    ----------
    service:
        The object to sample — anything exposing the duck-typed
        protocol in the module docstring (``QueryService`` does).
    interval_s:
        Wall-clock sampling period for the background ticker
        (default 100 ms).  Synchronous drivers ignore it and call
        :meth:`tick` directly.
    window:
        Sliding-window length in ticks for the windowed hit ratio
        (and the denominator of ``window_burn_rate``).
    slo:
        Optional :class:`SLOMonitor`; its status block is embedded in
        every tick and its targets in the header.
    path / writer:
        Where tick lines stream.  ``path`` opens (and owns, and
        closes) a file; ``writer`` is any object with ``write(str)``
        owned by the caller.  At most one may be given; with neither,
        ticks are kept in memory only (``pointer()`` still works).
    clock:
        Nanosecond monotonic clock (default ``time.perf_counter_ns``).
        Injectable so tests drive deterministic timestamps.
    config / model:
        Opaque mappings recorded verbatim in the header: the probe
        configuration, and the Eq. 5/6 model block (at least
        ``hit_ratio``) computed by the *experiments* layer.

    The sink is a context manager; ``close()`` stops the ticker,
    takes one final tick, and closes an owned file.
    """

    def __init__(
        self,
        service,
        *,
        interval_s: float = 0.1,
        window: int = 20,
        slo: SLOMonitor | None = None,
        path: str | None = None,
        writer: IO[str] | None = None,
        clock: Callable[[], int] = time.perf_counter_ns,
        config: Mapping[str, Any] | None = None,
        model: Mapping[str, Any] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if path is not None and writer is not None:
            raise ValueError("give path or writer, not both")
        self._service = service
        self.interval_s = float(interval_s)
        self.window = int(window)
        self.path = path
        self._slo = slo
        self._clock = clock

        self._owns_writer = path is not None
        self._writer = open(path, "w", encoding="utf-8") if path else writer
        self._closed = False

        self._lock = threading.Lock()
        # (requests, hits, evictions) deltas of the last `window` ticks.
        self._window_deltas: list[tuple[int, int, int]] = []
        self._prev_shards: list[dict[str, int]] | None = None
        self._prev_queries = 0
        self._prev_batches = 0
        self._seq = 0
        self._last_tick: dict[str, Any] | None = None
        self._recorder = LatencyRecorder()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

        self._t0 = int(self._clock())
        pool = service.pool
        self._header = {
            "schema": TELEMETRY_SCHEMA,
            "kind": "header",
            "interval_s": self.interval_s,
            "window": self.window,
            "shards": int(pool.n_shards),
            "capacity": int(pool.capacity),
            "shard_capacities": [int(c) for c in pool.shard_capacities()],
            "policy": pool.policy,
            "max_batch": int(service.max_batch),
            "max_wait_us": float(service.max_wait_us),
            "config": dict(config) if config is not None else {},
            "model": dict(model) if model is not None else None,
            "slo": slo.targets if slo is not None else None,
        }
        self._write_line(self._header)

    # ------------------------------------------------------------------
    # Hot path (called by the service, any thread)
    # ------------------------------------------------------------------
    def observe_batch(self, latencies_ns: np.ndarray | None) -> None:
        """Record one micro-batch's per-query latencies (or nothing).

        This is the only method the service's serve path calls; it
        touches only the internal recorder (its own lock), never the
        sink lock, so the hot-path cost is one locked chunk append.
        """
        if latencies_ns is not None:
            self._recorder.record_many_ns(latencies_ns)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def tick(self) -> dict[str, Any]:
        """Take one sample now; returns (and streams) the tick line.

        Samples the pool's per-shard counters, the service totals and
        queue depth, and atomically drains the latency window, then
        computes deltas and the sliding-window hit ratio under the
        sink lock.  Safe to call from the ticker thread or directly
        from a synchronous test driver (never both at once).
        """
        now = int(self._clock())
        pool = self._service.pool
        shard_snaps = [
            {field: int(getattr(snap, field)) for field in _FIELDS}
            for snap in pool.shard_stats()
        ]
        queries = int(self._service.queries_served)
        batches = int(self._service.batches_served)
        queue_depth = int(self._service.queue_depth)
        samples = self._recorder.snapshot_and_reset()

        with self._lock:
            tick = self._build_tick_locked(
                now, shard_snaps, queries, batches, queue_depth, samples
            )
            self._write_line(tick)
        return tick

    def _build_tick_locked(
        self,
        now: int,
        shard_snaps: list[dict[str, int]],
        queries: int,
        batches: int,
        queue_depth: int,
        samples: np.ndarray,
    ) -> dict[str, Any]:
        """Delta/window/SLO arithmetic; caller holds the sink lock."""
        rebased = False
        prev = self._prev_shards
        deltas: list[dict[str, int]] = []
        for i, snap in enumerate(shard_snaps):
            if prev is None or i >= len(prev):
                deltas.append(dict(snap))
                continue
            delta = {f: snap[f] - prev[i][f] for f in _FIELDS}
            if any(delta[f] < 0 for f in _FIELDS):
                # A counter reset landed between ticks (the warm-up
                # boundary): the snapshot restarted from zero, so the
                # post-reset snapshot *is* the delta.
                delta = dict(snap)
                rebased = True
            deltas.append(delta)

        q_delta = queries - self._prev_queries
        b_delta = batches - self._prev_batches
        if q_delta < 0 or b_delta < 0:
            q_delta, b_delta = queries, batches
            rebased = True

        agg_delta = {f: sum(d[f] for d in deltas) for f in _FIELDS}
        cum_agg = {f: sum(s[f] for s in shard_snaps) for f in _FIELDS}

        self._window_deltas.append(
            (agg_delta["requests"], agg_delta["hits"], agg_delta["evictions"])
        )
        while len(self._window_deltas) > self.window:
            self._window_deltas.pop(0)
        w_requests = sum(r for r, _, _ in self._window_deltas)
        w_hits = sum(h for _, h, _ in self._window_deltas)
        w_evictions = sum(e for _, _, e in self._window_deltas)
        hit_ratio = w_hits / w_requests if w_requests > 0 else None

        latency = _latency_window_us(samples)
        occupancy = q_delta / b_delta if b_delta > 0 else None

        slo_status = None
        if self._slo is not None:
            slo_status = self._slo.observe(
                p99_us=latency["p99"] if latency is not None else None,
                hit_ratio=hit_ratio,
                requests=agg_delta["requests"],
            )

        tick = {
            "kind": "tick",
            "seq": self._seq,
            "t_ns": now,
            "elapsed_s": (now - self._t0) / _NS_PER_S,
            "queue_depth": queue_depth,
            "queries": q_delta,
            "batches": b_delta,
            "batch_occupancy": occupancy,
            "shards": [
                {"shard_id": i, **delta} for i, delta in enumerate(deltas)
            ],
            "aggregate": agg_delta,
            "cumulative": {
                "shards": [
                    {"shard_id": i, **snap}
                    for i, snap in enumerate(shard_snaps)
                ],
                "aggregate": cum_agg,
            },
            "window": {
                "ticks": len(self._window_deltas),
                "requests": w_requests,
                "hits": w_hits,
                "evictions": w_evictions,
                "hit_ratio": hit_ratio,
            },
            "latency_us": latency,
            "rebased": rebased,
            "slo": slo_status,
        }
        self._prev_shards = shard_snaps
        self._prev_queries = queries
        self._prev_batches = batches
        self._seq += 1
        self._last_tick = tick
        return tick

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the background ticker (one tick per ``interval_s``)."""
        if self._thread is not None:
            raise RuntimeError("telemetry sink already started")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-tick", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            self.tick()

    def stop(self) -> None:
        """Stop the ticker and take one final tick.

        Call after the service has drained: the final tick's
        cumulative per-shard counters then equal ``aggregate_stats()``
        exactly — the invariant the metrics-export validator checks.
        """
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join()
            self._thread = None
        self.tick()

    def close(self) -> None:
        """Stop (final tick included) and release an owned file."""
        if self._closed:
            return
        self.stop()
        self._closed = True
        if self._owns_writer and self._writer is not None:
            self._writer.close()

    def __enter__(self) -> TelemetrySink:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def ticks(self) -> int:
        """Ticks taken so far."""
        with self._lock:
            return self._seq

    @property
    def header(self) -> dict[str, Any]:
        """The stream header (line 1), as written."""
        return dict(self._header)

    def pointer(self) -> dict[str, Any] | None:
        """The ``serving.telemetry`` block for the metrics export.

        Embeds the final tick's cumulative per-shard counters so the
        document validator can reconcile the stream against the
        serving section's buffer stats without re-reading the JSONL.
        Returns None before the first tick (nothing to reconcile).
        """
        with self._lock:
            last = self._last_tick
            if last is None:
                return None
            return {
                "schema": TELEMETRY_SCHEMA,
                "path": self.path,
                "interval_s": self.interval_s,
                "ticks": self._seq,
                "final": {
                    "aggregate": dict(last["cumulative"]["aggregate"]),
                    "shards": [
                        dict(row) for row in last["cumulative"]["shards"]
                    ],
                },
            }

    def _write_line(self, record: Mapping[str, Any]) -> None:
        if self._writer is not None:
            self._writer.write(json.dumps(record, sort_keys=True) + "\n")


def _latency_window_us(samples: np.ndarray) -> dict[str, float] | None:
    """Nearest-rank percentiles of one window's samples (ns → us).

    Same ceiling convention as :meth:`LatencyRecorder.summary_us`;
    None when the window carried no samples (an idle tick).
    """
    if samples.size == 0:
        return None
    ordered = np.sort(samples)

    def rank(q: float) -> float:
        return float(ordered[math.ceil(q / 100.0 * ordered.size) - 1])

    return {
        "count": int(ordered.size),
        "p50": rank(50.0) / _NS_PER_US,
        "p95": rank(95.0) / _NS_PER_US,
        "p99": rank(99.0) / _NS_PER_US,
        "max": float(ordered[-1]) / _NS_PER_US,
    }


# ----------------------------------------------------------------------
# Stream reading and validation
# ----------------------------------------------------------------------
def read_telemetry(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load and validate a ``repro-telemetry/1`` JSONL stream.

    Returns ``(header, ticks)``; raises ``ValueError`` on any schema
    or invariant violation (see :func:`validate_telemetry`).
    """
    with open(path, encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"empty telemetry stream: {path}")
    header, ticks = lines[0], lines[1:]
    validate_telemetry(header, ticks)
    return header, ticks


def validate_telemetry(
    header: Mapping[str, Any], ticks: list[Mapping[str, Any]]
) -> None:
    """Re-derive every stream invariant; raises ``ValueError`` on drift.

    Checks, in order: header schema and internal consistency, then per
    tick — contiguous ``seq``, shard-row shape (``shard_id`` equal to
    position, one row per shard), delta and cumulative sum
    reconciliation (``aggregate == Σ shards``, ``hits + misses ==
    requests``), cumulative additivity (``cumulative[t] ==
    cumulative[t-1] + delta[t]``, skipped on ``rebased`` ticks),
    sliding-window sums equal to the trailing delta sums, and
    latency-percentile ordering.
    """
    if header.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"unsupported telemetry schema {header.get('schema')!r}; "
            f"expected {TELEMETRY_SCHEMA!r}"
        )
    if header.get("kind") != "header":
        raise ValueError("first line of a telemetry stream must be a header")
    for key in ("interval_s", "window", "shards", "capacity",
                "shard_capacities", "policy", "config"):
        if key not in header:
            raise ValueError(f"telemetry header missing {key!r}")
    n_shards = int(header["shards"])
    capacities = list(header["shard_capacities"])
    if len(capacities) != n_shards:
        raise ValueError(
            f"header lists {len(capacities)} shard capacities "
            f"for {n_shards} shards"
        )
    if sum(capacities) != header["capacity"]:
        raise ValueError(
            f"shard capacities sum to {sum(capacities)}, "
            f"header capacity is {header['capacity']}"
        )
    window = int(header["window"])
    if window < 1:
        raise ValueError("header window must be >= 1")

    prev_cum: list[dict[str, int]] = [
        dict.fromkeys(_FIELDS, 0) for _ in range(n_shards)
    ]
    delta_history: list[tuple[int, int, int]] = []
    for i, tick in enumerate(ticks):
        where = f"tick {i}"
        if tick.get("kind") != "tick":
            raise ValueError(f"{where}: kind is {tick.get('kind')!r}")
        if tick.get("seq") != i:
            raise ValueError(f"{where}: seq {tick.get('seq')} out of order")
        _check_shard_rows(tick["shards"], tick["aggregate"], n_shards, where)
        cum = tick["cumulative"]
        _check_shard_rows(
            cum["shards"], cum["aggregate"], n_shards, f"{where} cumulative"
        )
        rebased = bool(tick.get("rebased"))
        for s in range(n_shards):
            for field in _FIELDS:
                expected = prev_cum[s][field] + tick["shards"][s][field]
                got = cum["shards"][s][field]
                if not rebased and got != expected:
                    raise ValueError(
                        f"{where}: shard {s} {field} cumulative {got} != "
                        f"previous {prev_cum[s][field]} + delta "
                        f"{tick['shards'][s][field]}"
                    )
        prev_cum = [
            {f: int(row[f]) for f in _FIELDS} for row in cum["shards"]
        ]

        if tick["queries"] < 0 or tick["batches"] < 0:
            raise ValueError(f"{where}: negative query/batch delta")
        if tick["queue_depth"] < 0:
            raise ValueError(f"{where}: negative queue depth")
        occupancy = tick.get("batch_occupancy")
        if tick["batches"] > 0:
            expected_occ = tick["queries"] / tick["batches"]
            if occupancy is None or abs(occupancy - expected_occ) > _RATIO_TOL:
                raise ValueError(
                    f"{where}: batch_occupancy {occupancy} != "
                    f"queries/batches {expected_occ}"
                )
        elif occupancy is not None:
            raise ValueError(f"{where}: occupancy reported with no batches")

        agg = tick["aggregate"]
        delta_history.append(
            (agg["requests"], agg["hits"], agg["evictions"])
        )
        tail = delta_history[-window:]
        win = tick["window"]
        expected_win = {
            "ticks": len(tail),
            "requests": sum(r for r, _, _ in tail),
            "hits": sum(h for _, h, _ in tail),
            "evictions": sum(e for _, _, e in tail),
        }
        for key, expected in expected_win.items():
            if win.get(key) != expected:
                raise ValueError(
                    f"{where}: window {key} {win.get(key)} != "
                    f"trailing sum {expected}"
                )
        ratio = win.get("hit_ratio")
        if expected_win["requests"] > 0:
            derived = expected_win["hits"] / expected_win["requests"]
            if ratio is None or abs(ratio - derived) > _RATIO_TOL:
                raise ValueError(
                    f"{where}: window hit_ratio {ratio} != {derived}"
                )
        elif ratio is not None:
            raise ValueError(
                f"{where}: hit_ratio reported for an empty window"
            )

        latency = tick.get("latency_us")
        if latency is not None:
            if latency["count"] < 1:
                raise ValueError(f"{where}: empty latency window present")
            p50, p95, p99 = latency["p50"], latency["p95"], latency["p99"]
            if not p50 <= p95 <= p99 <= latency["max"]:
                raise ValueError(
                    f"{where}: latency percentiles out of order: "
                    f"{p50} / {p95} / {p99} / {latency['max']}"
                )


def _check_shard_rows(
    rows: list[Mapping[str, int]],
    aggregate: Mapping[str, int],
    n_shards: int,
    where: str,
) -> None:
    """Shared shape + sum reconciliation for delta and cumulative rows."""
    if len(rows) != n_shards:
        raise ValueError(
            f"{where}: {len(rows)} shard rows for {n_shards} shards"
        )
    for s, row in enumerate(rows):
        if row.get("shard_id") != s:
            raise ValueError(
                f"{where}: shard row {s} carries shard_id "
                f"{row.get('shard_id')}"
            )
        for field in _FIELDS:
            if row[field] < 0:
                raise ValueError(
                    f"{where}: shard {s} negative {field} {row[field]}"
                )
        if row["hits"] + row["misses"] != row["requests"]:
            raise ValueError(
                f"{where}: shard {s} hits {row['hits']} + misses "
                f"{row['misses']} != requests {row['requests']}"
            )
    for field in _FIELDS:
        total = sum(row[field] for row in rows)
        if aggregate[field] != total:
            raise ValueError(
                f"{where}: aggregate {field} {aggregate[field]} != "
                f"shard sum {total}"
            )
