"""Versioned JSON export of experiment metrics (``--metrics-out``).

One *report* file holds one *document* per experiment run.  The format
is deliberately boring — plain JSON, schema identified by
``("repro-metrics", schema_version)`` — so that ``benchmarks/`` can
diff two runs with ``json.load`` and no further tooling, and CI can
archive the file as an artifact.  The full field-by-field schema is
documented in ``docs/OBSERVABILITY.md``; bump :data:`SCHEMA_VERSION`
whenever a field changes meaning or disappears (adding fields is
backward compatible and needs no bump).

:func:`validate_document` doubles as the invariant check the paper's
bookkeeping demands: the per-level hit/miss/request columns must sum
exactly to the aggregate ``BufferStats`` totals of the same window —
a document that fails this was produced by a broken sink, not a noisy
measurement, so validation raises instead of warning.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "experiment_document",
    "load_report",
    "metrics_report",
    "sanitize",
    "serving_section",
    "simulation_section",
    "sweep_section",
    "validate_document",
    "validate_report",
    "write_report",
]

SCHEMA_NAME = "repro-metrics"
SCHEMA_VERSION = 2
"""Version 2 adds the optional per-document ``trace`` pointer: the
path of the Chrome-trace JSON written by ``--trace-out`` in the same
run (``null`` when tracing was off).  Version-1 documents remain
readable — the field is simply absent."""

_SUPPORTED_VERSIONS = (1, 2)

_LEVEL_SUM_KEYS = ("requests", "hits", "misses", "evictions")
_BATCH_KEYS = ("requests", "hits", "misses", "evictions")


def sanitize(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serialisable types.

    Handles dataclasses, mappings (keys coerced to ``str``),
    sequences, sets (sorted for determinism), numpy scalars/arrays
    (via their ``item``/``tolist`` protocols), and objects exposing
    ``as_dict``.  Anything else must already be JSON-native.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: sanitize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {_key(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return [sanitize(v) for v in sorted(value, key=repr)]
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return sanitize(value.tolist())
    if hasattr(value, "item"):  # numpy scalars
        return sanitize(value.item())
    if hasattr(value, "as_dict"):
        return sanitize(value.as_dict())
    raise TypeError(f"cannot sanitise {type(value).__name__} for JSON export")


def _key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (list, tuple)):
        return "/".join(str(part) for part in key)
    return str(key)


def _estimate_dict(estimate: Any) -> dict[str, Any]:
    """A ``BatchMeansEstimate`` as schema fields."""
    return {
        "mean": float(estimate.mean),
        "half_width": float(estimate.half_width),
        "confidence": float(estimate.confidence),
        "batch_values": [float(v) for v in estimate.batch_values],
    }


def simulation_section(result: Any, probe: Mapping[str, Any]) -> dict[str, Any]:
    """The ``simulation`` section of a document, from a
    :class:`~repro.simulation.SimulationResult` produced with a
    registry attached (``level_stats`` must be populated).

    ``probe`` records the configuration the simulation ran with
    (dataset, loader, buffer size, ...), verbatim.
    """
    if result.level_stats is None:
        raise ValueError(
            "simulation_section needs a result with per-level stats; "
            "pass registry= to simulate()"
        )
    per_level = [row.as_dict() for row in result.level_stats]
    per_batch = [stats.as_dict() for stats in result.batch_stats]
    aggregate = {
        key: sum(batch[key] for batch in per_batch) for key in _BATCH_KEYS
    }
    requests = aggregate["requests"]
    aggregate["hit_ratio"] = aggregate["hits"] / requests if requests else 0.0
    return {
        "probe": sanitize(dict(probe)),
        "aggregate": aggregate,
        "per_level": per_level,
        "per_batch": per_batch,
        "disk_accesses": _estimate_dict(result.disk_accesses),
        "node_accesses": _estimate_dict(result.node_accesses),
        "warmup_queries": int(result.warmup_queries),
        "buffer_filled": bool(result.buffer_filled),
        "trace": [entry.as_dict() for entry in result.trace],
    }


def sweep_section(
    results: Sequence[Any], probe: Mapping[str, Any]
) -> dict[str, Any]:
    """The ``sweep`` section of a document: one stack-distance pass
    over several buffer sizes (see
    :func:`~repro.simulation.simulate_sweep`).

    ``results`` are the per-capacity
    :class:`~repro.simulation.SimulationResult` rows, ordered like the
    probe's ``buffer_sizes``; ``probe`` records the configuration the
    sweep ran with, verbatim.  Unlike :func:`simulation_section` there
    is no per-level breakdown — the offline engine has no buffer pool
    to attach a sink to.
    """
    buffer_sizes = list(probe.get("buffer_sizes", ()))
    if len(buffer_sizes) != len(results):
        raise ValueError(
            f"probe lists {len(buffer_sizes)} buffer sizes but "
            f"{len(results)} results were given"
        )
    per_capacity = []
    for buffer_size, result in zip(buffer_sizes, results):
        totals = {
            key: sum(getattr(stats, key) for stats in result.batch_stats)
            for key in _BATCH_KEYS
        }
        requests = totals["requests"]
        per_capacity.append(
            {
                "buffer_size": int(buffer_size),
                **totals,
                "hit_ratio": totals["hits"] / requests if requests else 0.0,
                "disk_accesses": _estimate_dict(result.disk_accesses),
                "node_accesses": _estimate_dict(result.node_accesses),
                "warmup_queries": int(result.warmup_queries),
                "buffer_filled": bool(result.buffer_filled),
            }
        )
    return {"probe": sanitize(dict(probe)), "per_capacity": per_capacity}


def serving_section(
    report: Any, probe: Mapping[str, Any],
    telemetry: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The ``serving`` section of a document, from a load-generator
    :class:`~repro.serving.loadgen.LoadReport`.

    ``probe`` records the service configuration the run played
    against (dataset, buffer size, shard count, batching knobs, ...),
    verbatim.  Latency values are microseconds throughout; the buffer
    block carries the aggregate counters plus the per-shard rows
    (``shard_id``, ``capacity``, counters) they must sum-reconcile
    with (checked by :func:`validate_document`).

    ``telemetry`` is the optional pointer block from
    :meth:`repro.obs.TelemetrySink.pointer`: the stream path plus the
    final tick's cumulative counters, which the validator reconciles
    against this section's buffer stats — the proof that the
    time-series and the terminal aggregate describe the same run.
    """
    aggregate = dict(report.buffer_aggregate)
    requests = int(aggregate.get("requests", 0))
    aggregate["hit_ratio"] = (
        aggregate["hits"] / requests if requests else 0.0
    )
    return {
        "probe": sanitize(dict(probe)),
        "queries": int(report.queries),
        "wall_seconds": float(report.wall_seconds),
        "throughput_qps": float(report.throughput_qps),
        "offered_rate_qps": float(report.offered_rate_qps),
        "batches": {
            "count": int(report.batches),
            "mean_queries": (
                report.queries / report.batches if report.batches else 0.0
            ),
        },
        "latency_us": {
            key: (int(v) if key == "count" else float(v))
            for key, v in report.latency_summary_us.items()
        },
        "histogram_us": sanitize(dict(report.latency_histogram_us)),
        "buffer": {
            "shards": int(report.shards),
            "capacity": int(report.buffer_capacity),
            "aggregate": aggregate,
            "per_shard": [dict(row) for row in report.buffer_per_shard],
        },
        "telemetry": dict(telemetry) if telemetry is not None else None,
    }


def experiment_document(
    name: str,
    meta: Mapping[str, str],
    result: Any,
    wall_seconds: float,
    simulation: Mapping[str, Any] | None = None,
    sweep: Mapping[str, Any] | None = None,
    serving: Mapping[str, Any] | None = None,
    registry: Any | None = None,
    trace: str | None = None,
) -> dict[str, Any]:
    """One schema-v2 document for a completed experiment.

    ``result`` is the experiment's result object (model predictions
    and simulated means, whatever the experiment produces), sanitised
    wholesale; ``simulation`` is an optional
    :func:`simulation_section`; ``sweep`` an optional
    :func:`sweep_section` (multi-capacity probe); ``serving`` an
    optional :func:`serving_section` (open-loop load-test; like
    ``sweep`` it is added without a version bump — adding fields is
    backward compatible); ``registry``
    an optional :class:`~repro.obs.registry.MetricsRegistry` whose
    contents are exported under ``"metrics"``; ``trace`` an optional
    pointer (a path) to the Chrome-trace JSON covering this run,
    written by ``repro-experiments --trace-out``.
    """
    document: dict[str, Any] = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "experiment": {
            "name": name,
            "title": str(meta.get("title", "")),
            "source": str(meta.get("source", "")),
        },
        "wall_seconds": float(wall_seconds),
        "result": sanitize(result),
        "simulation": dict(simulation) if simulation is not None else None,
        "sweep": dict(sweep) if sweep is not None else None,
        "serving": dict(serving) if serving is not None else None,
        "metrics": registry.to_dict() if registry is not None else None,
        "trace": str(trace) if trace is not None else None,
    }
    return document


def metrics_report(
    documents: Sequence[Mapping[str, Any]],
    generated_by: str = "repro-experiments",
) -> dict[str, Any]:
    """The top-level report envelope around per-experiment documents."""
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated_by": generated_by,
        "documents": [dict(d) for d in documents],
    }


def validate_document(document: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` if ``document`` is not schema-v1 valid.

    Beyond shape checks, enforces the accounting invariant: per-level
    requests/hits/misses/evictions sum exactly to the aggregate
    totals, and the per-batch rows sum to the same aggregate.
    """
    if document.get("schema") != SCHEMA_NAME:
        raise ValueError(f"not a {SCHEMA_NAME} document")
    if document.get("schema_version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported schema_version {document.get('schema_version')!r}"
        )
    experiment = document.get("experiment")
    if not isinstance(experiment, Mapping) or "name" not in experiment:
        raise ValueError("document missing experiment.name")
    if not isinstance(document.get("wall_seconds"), (int, float)):
        raise ValueError("document missing numeric wall_seconds")
    if "result" not in document:
        raise ValueError("document missing result")
    trace = document.get("trace")
    if trace is not None and not isinstance(trace, str):
        raise ValueError("trace must be a path string or null")
    simulation = document.get("simulation")
    if simulation is not None:
        _validate_simulation(simulation)
    sweep = document.get("sweep")
    if sweep is not None:
        _validate_sweep(sweep)
    serving = document.get("serving")
    if serving is not None:
        _validate_serving(serving)


def _validate_simulation(simulation: Mapping[str, Any]) -> None:
    for key in ("probe", "aggregate", "per_level", "per_batch"):
        if key not in simulation:
            raise ValueError(f"simulation section missing {key!r}")
    aggregate = simulation["aggregate"]
    per_level = simulation["per_level"]
    per_batch = simulation["per_batch"]
    for key in _LEVEL_SUM_KEYS:
        level_sum = sum(int(row[key]) for row in per_level)
        batch_sum = sum(int(row[key]) for row in per_batch)
        total = int(aggregate[key])
        if level_sum != total:
            raise ValueError(
                f"per-level {key} sum {level_sum} != aggregate {total}"
            )
        if batch_sum != total:
            raise ValueError(
                f"per-batch {key} sum {batch_sum} != aggregate {total}"
            )
    requests = int(aggregate["requests"])
    if int(aggregate["hits"]) + int(aggregate["misses"]) != requests:
        raise ValueError("aggregate hits + misses != requests")


def _validate_sweep(sweep: Mapping[str, Any]) -> None:
    """Shape checks plus the LRU inclusion invariant.

    Each per-capacity row must balance (hits + misses == requests).
    When every capacity measured the same window (identical
    ``warmup_queries``, the sweep probes' configuration), total misses
    must additionally be monotone non-increasing in buffer size — a
    violation means the stack-distance accounting is broken, not that
    the measurement was noisy.
    """
    for key in ("probe", "per_capacity"):
        if key not in sweep:
            raise ValueError(f"sweep section missing {key!r}")
    rows = sweep["per_capacity"]
    if not isinstance(rows, list) or not rows:
        raise ValueError("sweep per_capacity must be a non-empty list")
    for row in rows:
        for key in ("buffer_size", "warmup_queries", *_BATCH_KEYS):
            if key not in row:
                raise ValueError(f"sweep capacity row missing {key!r}")
        if int(row["hits"]) + int(row["misses"]) != int(row["requests"]):
            raise ValueError("sweep row hits + misses != requests")
    warmups = {int(row["warmup_queries"]) for row in rows}
    if len(warmups) == 1:
        by_size = sorted(rows, key=lambda row: int(row["buffer_size"]))
        for smaller, larger in zip(by_size, by_size[1:]):
            if int(larger["misses"]) > int(smaller["misses"]):
                raise ValueError(
                    "sweep misses increase with buffer size "
                    f"({smaller['buffer_size']} -> {larger['buffer_size']}): "
                    "the LRU inclusion property is violated"
                )


def _validate_serving(serving: Mapping[str, Any]) -> None:
    """Shape checks plus the serving accounting invariants.

    The buffer aggregate must balance (hits + misses == requests) and
    equal the per-shard sums field by field; latency percentiles must
    be ordered (p50 <= p95 <= p99 <= max); the histogram counts must
    sum to the latency sample count, which must equal the number of
    queries served.  A violation means a broken recorder or a shard
    that dodged the accounting, not measurement noise.
    """
    for key in (
        "probe",
        "queries",
        "wall_seconds",
        "throughput_qps",
        "batches",
        "latency_us",
        "histogram_us",
        "buffer",
    ):
        if key not in serving:
            raise ValueError(f"serving section missing {key!r}")
    latency = serving["latency_us"]
    for key in ("count", "mean", "max", "p50", "p95", "p99"):
        if key not in latency:
            raise ValueError(f"serving latency_us missing {key!r}")
    if not (
        float(latency["p50"])
        <= float(latency["p95"])
        <= float(latency["p99"])
        <= float(latency["max"])
    ):
        raise ValueError("serving latency percentiles are not ordered")
    if int(latency["count"]) != int(serving["queries"]):
        raise ValueError(
            f"latency count {latency['count']} != queries "
            f"{serving['queries']}"
        )
    histogram = serving["histogram_us"]
    if sum(int(c) for c in histogram["counts"]) != int(latency["count"]):
        raise ValueError("histogram counts do not sum to latency count")
    if len(histogram["bounds_us"]) != len(histogram["counts"]) + 1:
        raise ValueError("histogram needs len(counts) + 1 bucket bounds")
    buffer = serving["buffer"]
    for key in ("shards", "aggregate", "per_shard"):
        if key not in buffer:
            raise ValueError(f"serving buffer block missing {key!r}")
    aggregate = buffer["aggregate"]
    per_shard = buffer["per_shard"]
    if int(buffer["shards"]) != len(per_shard):
        raise ValueError("per_shard row count != shards")
    for s, row in enumerate(per_shard):
        if int(row.get("shard_id", -1)) != s:
            raise ValueError(
                f"per_shard row {s} carries shard_id {row.get('shard_id')!r}"
            )
        if int(row.get("capacity", 0)) < 1:
            raise ValueError(f"per_shard row {s} missing a positive capacity")
    if "capacity" in buffer:
        capacity_sum = sum(int(row["capacity"]) for row in per_shard)
        if capacity_sum != int(buffer["capacity"]):
            raise ValueError(
                f"per-shard capacities sum to {capacity_sum}, buffer "
                f"capacity is {buffer['capacity']}"
            )
    for key in _LEVEL_SUM_KEYS:
        shard_sum = sum(int(row[key]) for row in per_shard)
        if shard_sum != int(aggregate[key]):
            raise ValueError(
                f"per-shard {key} sum {shard_sum} != aggregate "
                f"{aggregate[key]}"
            )
    requests = int(aggregate["requests"])
    if int(aggregate["hits"]) + int(aggregate["misses"]) != requests:
        raise ValueError("serving aggregate hits + misses != requests")
    telemetry = serving.get("telemetry")
    if telemetry is not None:
        _validate_serving_telemetry(telemetry, buffer)


def _validate_serving_telemetry(
    telemetry: Mapping[str, Any], buffer: Mapping[str, Any]
) -> None:
    """Reconcile the telemetry pointer against the buffer block.

    The pointer embeds the stream's *final tick* cumulative counters
    (see ``repro.obs.telemetry``); a run whose telemetry sink took its
    last tick after the drain must agree with the load report's
    terminal counters exactly — per shard and in aggregate.  Any
    difference means the time-series and the aggregate describe
    different windows, which is a sink bug, not noise.
    """
    for key in ("schema", "ticks", "final"):
        if key not in telemetry:
            raise ValueError(f"serving telemetry block missing {key!r}")
    if telemetry["schema"] != "repro-telemetry/1":
        raise ValueError(
            f"unsupported telemetry schema {telemetry['schema']!r}"
        )
    if int(telemetry["ticks"]) < 1:
        raise ValueError("telemetry block with no ticks cannot reconcile")
    path = telemetry.get("path")
    if path is not None and not isinstance(path, str):
        raise ValueError("telemetry path must be a string or null")
    final = telemetry["final"]
    final_rows = final["shards"]
    per_shard = buffer["per_shard"]
    if len(final_rows) != len(per_shard):
        raise ValueError(
            f"telemetry final has {len(final_rows)} shard rows, serving "
            f"buffer has {len(per_shard)}"
        )
    for s, (tick_row, shard_row) in enumerate(zip(final_rows, per_shard)):
        if int(tick_row.get("shard_id", -1)) != s:
            raise ValueError(
                f"telemetry final row {s} carries shard_id "
                f"{tick_row.get('shard_id')!r}"
            )
        for key in _LEVEL_SUM_KEYS:
            if int(tick_row[key]) != int(shard_row[key]):
                raise ValueError(
                    f"telemetry final shard {s} {key} {tick_row[key]} != "
                    f"serving per-shard {shard_row[key]}"
                )
    for key in _LEVEL_SUM_KEYS:
        if int(final["aggregate"][key]) != int(buffer["aggregate"][key]):
            raise ValueError(
                f"telemetry final aggregate {key} "
                f"{final['aggregate'][key]} != serving aggregate "
                f"{buffer['aggregate'][key]}"
            )


def validate_report(report: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` if ``report`` is not a valid v1 report."""
    if report.get("schema") != SCHEMA_NAME:
        raise ValueError(f"not a {SCHEMA_NAME} report")
    if report.get("schema_version") not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported schema_version {report.get('schema_version')!r}"
        )
    documents = report.get("documents")
    if not isinstance(documents, list):
        raise ValueError("report missing documents list")
    for document in documents:
        validate_document(document)


def write_report(path: str | Path, report: Mapping[str, Any]) -> None:
    """Validate and write a report as pretty-printed JSON."""
    validate_report(report)
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report written by :func:`write_report`."""
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    validate_report(report)
    return report
