"""Per-query latency recording for the serving engine.

The batch simulator measures *work* (disk accesses per query); a
serving engine must also measure *waiting* — how long each query sat
in the admission queue plus how long its micro-batch took.  This
module is the obs-layer home for that measurement: a thread-safe
reservoir of raw per-query latencies with exact (nearest-rank)
percentiles and a log-spaced histogram for the ``repro-metrics``
export.

Two deliberate choices:

* **Raw samples, not streaming sketches.**  The load generator plays
  bounded, seeded runs (10^4–10^5 queries), so keeping every sample
  costs a few hundred KiB and buys exact, deterministic percentiles —
  the same exactness standard the simulator holds itself to.  A
  sketch would trade that away for scale this repo does not need yet.
* **Nearest-rank percentiles** (the ceiling convention): ``p99`` of
  ``n`` sorted samples is element ``ceil(0.99 * n) - 1``.  No
  interpolation, so two runs with identical samples report identical
  percentiles bit-for-bit.

Recording is cheap and lock-guarded (appends of numpy chunks);
summaries sort lazily at read time.
"""

from __future__ import annotations

import math
import threading

import numpy as np

__all__ = ["LatencyRecorder"]

_NS_PER_US = 1_000.0


class LatencyRecorder:
    """A thread-safe reservoir of per-query latencies in nanoseconds.

    Writers call :meth:`record_ns` / :meth:`record_many_ns` from any
    thread; readers call :meth:`percentile_us`, :meth:`summary_us` or
    :meth:`histogram_us` once the run has drained.  Reads take the
    same lock, so a mid-run snapshot is consistent (it simply reflects
    the queries completed so far).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._chunks: list[np.ndarray] = []
        self._count = 0

    # ------------------------------------------------------------------
    # Recording (hot path)
    # ------------------------------------------------------------------
    def record_ns(self, latency_ns: int) -> None:
        """Record one query's latency."""
        sample = np.asarray([latency_ns], dtype=np.int64)
        with self._lock:
            self._chunks.append(sample)
            self._count += 1

    def record_many_ns(self, latencies_ns: np.ndarray) -> None:
        """Record a micro-batch worth of latencies in one append."""
        chunk = np.ascontiguousarray(latencies_ns, dtype=np.int64)
        if chunk.ndim != 1:
            raise ValueError("latencies must be a 1-d array")
        if chunk.size == 0:
            return
        with self._lock:
            self._chunks.append(chunk)
            self._count += chunk.size

    def reset(self) -> None:
        """Discard all samples (the warm-up/measurement boundary)."""
        with self._lock:
            self._chunks.clear()
            self._count = 0

    def snapshot_and_reset(self) -> np.ndarray:
        """Atomically take every sample and leave the recorder empty.

        The windowed-sampling primitive: the telemetry sink calls this
        once per tick to turn "samples since the last tick" into one
        array.  The swap happens under the recording lock, so a
        concurrent :meth:`record_many_ns` lands either entirely in
        this snapshot or entirely in the next one — no chunk is ever
        split or dropped (``tests/obs/test_latency.py`` soaks this
        with concurrent writers).  Concatenation happens outside the
        lock on the now-exclusively-owned chunk list.
        """
        with self._lock:
            chunks = self._chunks
            self._chunks = []
            self._count = 0
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Samples recorded so far."""
        with self._lock:
            return self._count

    def samples_ns(self) -> np.ndarray:
        """All samples, recording order, as one int64 array (a copy)."""
        with self._lock:
            if not self._chunks:
                return np.empty(0, dtype=np.int64)
            return np.concatenate(self._chunks)

    def percentile_us(self, q: float) -> float:
        """Nearest-rank percentile ``q`` (0 < q <= 100), microseconds."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        ordered = np.sort(self.samples_ns())
        if ordered.size == 0:
            raise ValueError("no latency samples recorded")
        rank = math.ceil(q / 100.0 * ordered.size)
        return float(ordered[rank - 1]) / _NS_PER_US

    def summary_us(self) -> dict[str, float]:
        """The export-facing summary: count, mean, max, p50/p95/p99.

        All values in microseconds except ``count``.  Raises if no
        samples were recorded — an empty latency section means the
        load generator never ran, which is a bug, not a datum.
        """
        ordered = np.sort(self.samples_ns())
        if ordered.size == 0:
            raise ValueError("no latency samples recorded")

        def rank(q: float) -> float:
            return float(ordered[math.ceil(q / 100.0 * ordered.size) - 1])

        return {
            "count": int(ordered.size),
            "mean": float(ordered.mean()) / _NS_PER_US,
            "max": float(ordered[-1]) / _NS_PER_US,
            "p50": rank(50.0) / _NS_PER_US,
            "p95": rank(95.0) / _NS_PER_US,
            "p99": rank(99.0) / _NS_PER_US,
        }

    def histogram_us(self, n_buckets: int = 32) -> dict[str, list[float]]:
        """A log-spaced latency histogram for the metrics export.

        Buckets span from the smallest positive sample (floored at
        0.1 us) to the maximum, geometrically.  Returns ``bounds_us``
        (``n_buckets + 1`` edges) and ``counts`` (``n_buckets``
        integers summing to :attr:`count` — the export validator
        checks exactly that).
        """
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        samples = self.samples_ns().astype(np.float64) / _NS_PER_US
        if samples.size == 0:
            raise ValueError("no latency samples recorded")
        lo = max(float(samples[samples > 0].min(initial=np.inf)), 0.1)
        if not np.isfinite(lo):
            lo = 0.1
        hi = max(float(samples.max()), lo * 1.0000001)
        bounds = np.geomspace(lo, hi, n_buckets + 1)
        # Clip below-range samples into the first bucket and make the
        # last edge inclusive so every sample lands in exactly one
        # bucket.
        clipped = np.clip(samples, lo, hi)
        counts, _ = np.histogram(clipped, bins=bounds)
        return {
            "bounds_us": [float(b) for b in bounds],
            "counts": [int(c) for c in counts],
        }
