"""Pinning analysis utilities (paper §5.5).

The paper studies how many top levels of the R-tree should be pinned in
the buffer and concludes that pinning helps only "when the total number
of nodes pinned is within a factor of two of the buffer size".  These
helpers wrap :func:`~repro.model.buffered.buffer_model` to make that
analysis (and the pinning-advisor example) one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..geometry import near_zero
from ..rtree import TreeDescription
from .buffered import BufferModelResult, buffer_model

__all__ = [
    "PinningSweep",
    "max_pinnable_levels",
    "pinning_improvement",
    "sweep_pinning",
]


def max_pinnable_levels(desc: TreeDescription, buffer_size: int) -> int:
    """The largest number of top levels whose pages fit in the buffer."""
    if buffer_size < 1:
        raise ValueError("buffer_size must be at least 1 page")
    levels = 0
    while (
        levels < desc.height
        and desc.pages_in_top_levels(levels + 1) <= buffer_size
    ):
        levels += 1
    return levels


def pinning_improvement(
    desc: TreeDescription,
    workload,
    buffer_size: int,
    pinned_levels: int,
) -> float:
    """Fractional reduction in disk accesses from pinning vs. plain LRU.

    ``(ED_nopin − ED_pin) / ED_nopin`` — e.g. 0.53 reproduces the
    paper's "53 percent fewer disk accesses".  Returns 0 when the
    unpinned model already needs no disk accesses.
    """
    base = buffer_model(desc, workload, buffer_size, pinned_levels=0)
    pinned = buffer_model(desc, workload, buffer_size, pinned_levels=pinned_levels)
    if near_zero(base.disk_accesses):
        return 0.0
    return (base.disk_accesses - pinned.disk_accesses) / base.disk_accesses


@dataclass(frozen=True)
class PinningSweep:
    """Model results for every feasible pinning depth of one setup."""

    results: tuple[BufferModelResult, ...]
    """Index ``k`` holds the result for pinning ``k`` levels."""

    @property
    def best_levels(self) -> int:
        """The pinning depth with the fewest expected disk accesses.

        Ties go to the *smallest* depth: pinning that does not help
        should not be recommended, since a shared buffer has better
        uses for the pages (the paper's closing advice).
        """
        best = 0
        for k, result in enumerate(self.results):
            if result.disk_accesses < self.results[best].disk_accesses * (1 - 1e-12):
                best = k
        return best

    @property
    def best(self) -> BufferModelResult:
        """The result at :attr:`best_levels`."""
        return self.results[self.best_levels]


def sweep_pinning(
    desc: TreeDescription, workload, buffer_size: int
) -> PinningSweep:
    """Evaluate the buffer model at every feasible pinning depth."""
    feasible = max_pinnable_levels(desc, buffer_size)
    results = tuple(
        buffer_model(desc, workload, buffer_size, pinned_levels=k)
        for k in range(feasible + 1)
    )
    return PinningSweep(results)
