"""The paper's analytical cost models.

* :mod:`~repro.model.access` — per-node access probabilities
  ``A^Q_ij`` under uniform and data-driven query models;
* :mod:`~repro.model.bufferless` — expected node accesses (the
  Kamel–Faloutsos / Pagel metric the paper improves on);
* :mod:`~repro.model.buffered` — the buffer model: ``D(N)``, ``N*``,
  and expected disk accesses per query;
* :mod:`~repro.model.pinning` — pinned-level analysis helpers.
"""

from __future__ import annotations

from .access import (
    data_driven_probabilities,
    query_corner_domain,
    raw_region_probabilities,
    uniform_point_probabilities,
    uniform_region_probabilities,
)
from .buffered import (
    BufferModelResult,
    buffer_model,
    buffer_model_sweep,
    expected_distinct_nodes,
    queries_to_fill_buffer,
    steady_state_disk_accesses,
)
from .bufferless import (
    Eq2Decomposition,
    expected_node_accesses,
    kamel_faloutsos_decomposition,
    kamel_faloutsos_estimate,
)
from .pinning import (
    PinningSweep,
    max_pinnable_levels,
    pinning_improvement,
    sweep_pinning,
)

__all__ = [
    "BufferModelResult",
    "Eq2Decomposition",
    "PinningSweep",
    "buffer_model",
    "buffer_model_sweep",
    "data_driven_probabilities",
    "expected_distinct_nodes",
    "expected_node_accesses",
    "kamel_faloutsos_decomposition",
    "kamel_faloutsos_estimate",
    "max_pinnable_levels",
    "pinning_improvement",
    "queries_to_fill_buffer",
    "query_corner_domain",
    "raw_region_probabilities",
    "steady_state_disk_accesses",
    "sweep_pinning",
    "uniform_point_probabilities",
    "uniform_region_probabilities",
]
