"""The paper's buffer model (§3.3): expected *disk accesses* per query.

Following Bhide, Dan & Dias [2], the steady-state LRU hit probability
is approximated by the hit probability at the moment the buffer first
fills.  With per-node access probabilities ``p_j = A^Q_ij``:

* the expected number of distinct nodes touched in ``N`` queries is
  ``D(N) = M − Σ_j (1 − p_j)^N``                      (Eq. 5);
* the buffer of ``B`` pages first fills after ``N*`` queries, the
  smallest integer with ``D(N*) ≥ B`` (found by binary search);
* the expected number of disk accesses per query at steady state is
  ``ED = Σ_j p_j · (1 − p_j)^{N*}``                   (Eq. 6).

Pinning the top levels is handled exactly as the paper prescribes:
"simply reduce the number of buffer pages by the number of pages in
these pinned levels and omit the top levels from the model."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..buffer import PinningError
from ..geometry import near_zero
from ..obs.spans import span
from ..rtree import TreeDescription

__all__ = [
    "BufferModelResult",
    "buffer_model",
    "buffer_model_sweep",
    "expected_distinct_nodes",
    "queries_to_fill_buffer",
    "steady_state_disk_accesses",
]

_MAX_FILL_QUERIES = 1 << 62
"""Search cap for ``N*``; beyond this the buffer is treated as never
filling (only reachable with access probabilities below ~1e-18)."""


def _log_miss(probs: np.ndarray) -> np.ndarray:
    """``log(1 − p)`` per node, computed stably (``-inf`` where p = 1)."""
    with np.errstate(divide="ignore"):
        return np.log1p(-probs)


def _distinct_from_log(log_miss: np.ndarray, n_queries: int) -> float:
    """``D(N)`` from precomputed ``log(1 − p)`` — the search hot path."""
    if n_queries == 0:
        return 0.0
    return float(log_miss.size - np.sum(np.exp(n_queries * log_miss)))


def expected_distinct_nodes(probs: np.ndarray, n_queries: int) -> float:
    """``D(N)`` — expected distinct nodes accessed in ``N`` queries (Eq. 5).

    Computed as ``M − Σ exp(N · log1p(−p))`` for numerical stability
    with very small access probabilities.  Nodes with ``p = 1`` (e.g. a
    root MBR covering the whole data space) contribute 1 for any
    ``N >= 1``; nodes with ``p = 0`` never contribute.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative")
    return _distinct_from_log(_log_miss(probs), n_queries)


def queries_to_fill_buffer(
    probs: np.ndarray, buffer_pages: int, *, lower_bound: int = 0
) -> int | None:
    """``N*`` — the smallest ``N`` with ``D(N) >= buffer_pages``.

    Returns ``None`` when the buffer can never fill: fewer than
    ``buffer_pages`` nodes have positive access probability (every
    reachable node then stays resident and steady-state disk accesses
    are zero), or filling would take more than ``2**62`` queries.

    ``log1p(-probs)`` is hoisted out of the search, so each of the
    O(log N*) probes costs one ``exp`` pass instead of two transcendental
    passes.  ``lower_bound`` seeds the bracket with an ``N`` already
    known to leave the buffer unfilled (``D(lower_bound) <
    buffer_pages``): :func:`buffer_model_sweep` passes the previous
    size's ``N* − 1``, exploiting that ``N*`` is non-decreasing in the
    buffer size.  An invalid hint is checked once and discarded.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if buffer_pages < 1:
        raise ValueError("buffer_pages must be at least 1")
    if lower_bound < 0:
        raise ValueError("lower_bound must be non-negative")
    reachable = int(np.count_nonzero(probs > 0.0))
    if reachable < buffer_pages:
        return None

    log_miss = _log_miss(probs)
    lo = lower_bound
    if lo > 0 and _distinct_from_log(log_miss, lo) >= buffer_pages:
        lo = 0  # stale hint: restore the bracket invariant
    # Gallop upward from the bracket: D(lo) < buffer_pages <= D(hi).
    step = 1
    hi = lo + step
    while _distinct_from_log(log_miss, hi) < buffer_pages:
        lo = hi
        step <<= 1
        hi = lo + step
        if hi > _MAX_FILL_QUERIES:
            return None
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _distinct_from_log(log_miss, mid) >= buffer_pages:
            hi = mid
        else:
            lo = mid
    return hi


def steady_state_disk_accesses(probs: np.ndarray, n_star: int) -> float:
    """``ED`` — expected disk accesses per query at steady state (Eq. 6).

    ``Σ_j p_j (1 − p_j)^{N*}``: node ``j`` costs a disk access iff it is
    accessed (probability ``p_j``) while not resident, and the
    probability of non-residence is approximated by the probability of
    not having been touched during the ``N*`` warm-up queries.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if n_star < 0:
        raise ValueError("n_star must be non-negative")
    with np.errstate(divide="ignore", invalid="ignore"):
        log_miss = np.log1p(-probs)
        miss = np.exp(n_star * log_miss)
    if n_star == 0:
        miss = np.ones_like(probs)
    return float(np.sum(probs * miss))


@dataclass(frozen=True)
class BufferModelResult:
    """Everything the buffer model computes for one configuration."""

    disk_accesses: float
    """``ED`` — expected disk accesses per query at steady state."""
    node_accesses: float
    """``EPT`` — expected node accesses per query (bufferless metric)."""
    n_star: int | None
    """Queries needed to first fill the buffer (None: never fills)."""
    buffer_size: int
    """Total buffer pages ``B``."""
    pinned_levels: int
    """Number of top tree levels pinned."""
    pinned_pages: int
    """Pages occupied by the pinned levels."""
    total_nodes: int
    """``M`` — nodes (pages) in the whole tree."""

    @property
    def effective_buffer(self) -> int:
        """Pages left to the LRU area after pinning."""
        return self.buffer_size - self.pinned_pages

    @property
    def hit_ratio(self) -> float:
        """Steady-state buffer hit probability implied by the model."""
        if near_zero(self.node_accesses):
            return 1.0
        return 1.0 - self.disk_accesses / self.node_accesses


def buffer_model(
    desc: TreeDescription,
    workload,
    buffer_size: int,
    pinned_levels: int = 0,
) -> BufferModelResult:
    """Run the full buffer model for one tree / workload / buffer setup.

    Parameters
    ----------
    desc:
        Per-level node MBRs of the tree (see
        :class:`~repro.rtree.TreeDescription`).
    workload:
        Any object with ``access_probabilities(rects) -> array`` — the
        workloads of :mod:`repro.queries`.
    buffer_size:
        Buffer capacity ``B`` in pages.
    pinned_levels:
        How many top levels of the tree to pin (0 = plain LRU).

    Raises
    ------
    PinningError
        If the pinned levels alone exceed the buffer capacity.
    """
    return buffer_model_sweep(desc, workload, (buffer_size,), pinned_levels)[0]


def buffer_model_sweep(
    desc: TreeDescription,
    workload,
    buffer_sizes,
    pinned_levels: int = 0,
) -> list[BufferModelResult]:
    """The buffer model over several buffer sizes at once.

    The per-node access probabilities — the expensive part for
    data-driven workloads, which scan every data centre per node — are
    computed once and shared across the whole sweep.
    """
    buffer_sizes = [int(b) for b in buffer_sizes]
    if any(b < 1 for b in buffer_sizes):
        raise ValueError("buffer sizes must be at least 1 page")
    if not 0 <= pinned_levels <= desc.height:
        raise ValueError(
            f"pinned_levels must be in [0, {desc.height}], got {pinned_levels}"
        )

    pinned_pages = desc.pages_in_top_levels(pinned_levels)
    too_small = [b for b in buffer_sizes if pinned_pages > b]
    if too_small:
        raise PinningError(
            f"pinning {pinned_levels} levels needs {pinned_pages} pages "
            f"but the buffer holds only {min(too_small)}"
        )

    with span(
        "model.access_probabilities",
        nodes=desc.total_nodes,
        levels=desc.height,
        workload=type(workload).__name__,
    ):
        probs_all = np.asarray(
            workload.access_probabilities(desc.all_rects), dtype=np.float64
        )
    if probs_all.shape != (desc.total_nodes,):
        raise ValueError("workload returned a misshapen probability array")
    node_accesses = float(np.sum(probs_all))

    first_unpinned = desc.level_offsets[pinned_levels]
    probs = probs_all[first_unpinned:]
    reachable = int(np.count_nonzero(probs > 0.0))

    # Walk the sizes in ascending order: the effective buffer grows, so
    # N* is non-decreasing and each binary search can start from the
    # previous N* instead of from scratch; once one size's fill point
    # exceeds the search cap, every larger size's does too.  Results
    # are reported in the caller's original order.
    results: list[BufferModelResult | None] = [None] * len(buffer_sizes)
    order = sorted(range(len(buffer_sizes)), key=buffer_sizes.__getitem__)
    last_n_star = 0
    never_fills = False
    for i in order:
        buffer_size = buffer_sizes[i]
        effective = buffer_size - pinned_pages
        if probs.size == 0 or (effective > 0 and effective >= reachable):
            # Every reachable unpinned node eventually stays resident.
            n_star: int | None = None
            disk = 0.0
        elif effective == 0:
            # Pinned pages consume the whole buffer: each unpinned
            # access is a disk access.
            n_star = None
            disk = float(np.sum(probs))
        elif never_fills:
            n_star = None
            disk = 0.0
        else:
            with span("model.n_star_search", buffer_size=buffer_size):
                n_star = queries_to_fill_buffer(
                    probs, effective, lower_bound=max(0, last_n_star - 1)
                )
            if n_star is None:
                never_fills = True
                disk = 0.0
            else:
                last_n_star = n_star
                with span(
                    "model.ed_sum", buffer_size=buffer_size, n_star=n_star
                ):
                    disk = steady_state_disk_accesses(probs, n_star)
        results[i] = BufferModelResult(
            disk_accesses=disk,
            node_accesses=node_accesses,
            n_star=n_star,
            buffer_size=buffer_size,
            pinned_levels=pinned_levels,
            pinned_pages=pinned_pages,
            total_nodes=desc.total_nodes,
        )
    return results
