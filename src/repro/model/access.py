"""Per-node access probabilities ``A^Q_ij`` (paper §3.1–§3.2).

These functions map node MBRs to the probability that a query touches
each node, under the paper's three query models:

* **uniform point / region queries** with the boundary correction of
  §3.1 (suggested by Pagel et al.): the query's top-right corner is
  uniform over ``U' = Π_k [q_k, 1]`` and the probability of touching
  ``R`` is ``area(R' ∩ U') / area(U')`` where ``R'`` is ``R`` with its
  top-right corner pushed out by the query extents;
* the **original Kamel–Faloutsos formula** without clipping (kept for
  the ablation of how much the correction matters);
* **data-driven queries** (§3.2): the query is centred on the centre of
  a uniformly chosen data rectangle, so the probability of touching
  ``R`` is the fraction of data centres inside ``R`` expanded by the
  query extents about its own centre (Eq. 4).

All functions are d-dimensional and vectorised over the node array.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..accel import SortedRangeCounter
from ..accel import count_points_inside as _accel_count
from ..geometry import GeometryError, Rect, RectArray, unit_rect

__all__ = [
    "data_driven_probabilities",
    "query_corner_domain",
    "raw_region_probabilities",
    "uniform_point_probabilities",
    "uniform_region_probabilities",
]


def _validate_extents(extents: Sequence[float], dim: int) -> np.ndarray:
    extents = np.asarray(extents, dtype=np.float64)
    if extents.shape != (dim,):
        raise GeometryError(
            f"query extents must have {dim} entries, got shape {extents.shape}"
        )
    if (extents < 0).any():
        raise GeometryError("query extents must be non-negative")
    if (extents >= 1).any():
        raise GeometryError("query extents must be smaller than the unit cube")
    return extents


def query_corner_domain(extents: Sequence[float], dim: int) -> Rect:
    """``U'`` — the domain of the query's top-right corner (§3.1, Fig. 3).

    For the whole query region to fit within the unit cube, the corner
    must lie in ``Π_k [q_k, 1]``.
    """
    extents = _validate_extents(extents, dim)
    return Rect(tuple(extents), (1.0,) * dim)


def uniform_region_probabilities(
    rects: RectArray, extents: Sequence[float]
) -> np.ndarray:
    """Clipped access probabilities for uniform region queries.

    Implements the corrected formula of §3.1:

        ``A^Q_ij = area(R' ∩ U') / area(U')``

    where ``R'`` is the Kamel–Faloutsos extension of ``R`` (top-right
    corner grown by the query extents) and ``U'`` the corner domain.
    """
    extents = _validate_extents(extents, rects.dim)
    domain = query_corner_domain(extents, rects.dim)
    numerators = rects.extended(extents).clipped_areas(domain)
    return numerators / domain.area


def uniform_point_probabilities(rects: RectArray) -> np.ndarray:
    """Access probabilities for uniform point queries.

    The special case ``q = 0``: the probability of touching ``R`` is
    the area of ``R ∩ U`` — "the probability of accessing ``R_ij`` is
    just the area of ``R_ij``" for data normalised into the unit cube.
    """
    return rects.clipped_areas(unit_rect(rects.dim))


def raw_region_probabilities(
    rects: RectArray, extents: Sequence[float]
) -> np.ndarray:
    """The original (unclipped) Kamel–Faloutsos access "probabilities".

    ``Π_k (X_k + q_k)`` — the area of the extended rectangle, which can
    exceed 1 near the boundary (Fig. 3b).  Kept for the clipping
    ablation; summing these over all nodes yields Eq. 2:
    ``A + qx·Ly + qy·Lx + M·qx·qy``.
    """
    extents = _validate_extents(extents, rects.dim)
    return np.prod(rects.extents() + extents, axis=1)


def data_driven_probabilities(
    rects: RectArray,
    centers: np.ndarray,
    extents: Sequence[float],
    *,
    method: str = "auto",
    counter: SortedRangeCounter | None = None,
) -> np.ndarray:
    """Access probabilities under the data-driven query model (Eq. 4).

    A query is a box of the given extents centred on the centre ``c_j``
    of a uniformly chosen data rectangle.  The query touches ``R`` iff
    ``c_j`` falls inside ``R'``, the centre-preserving expansion of
    ``R`` by the query extents (Fig. 4), so

        ``A^Q_ij = (1/n) Σ_k y_ijk``

    with ``y_ijk = 1`` iff centre ``k`` is inside ``R'_ij``.  With zero
    extents this degenerates to the point-query indicator ``x_ijk``.

    The counting step runs on :func:`repro.accel.count_points_inside`:
    ``method`` selects the kernel (``"auto"`` by size, ``"sorted"`` /
    ``"dense"`` force it) and ``counter`` lets callers with a fixed
    centre set amortise its sort across calls — all kernels are
    bit-exact, so the probabilities do not depend on the choice.
    """
    extents = _validate_extents(extents, rects.dim)
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or centers.shape[1] != rects.dim:
        raise GeometryError("centers must be an (n, d) array")
    if centers.shape[0] == 0:
        raise GeometryError("the data-driven model needs at least one center")
    expanded = rects.expanded_centered(extents)
    counts = _accel_count(expanded, centers, method=method, counter=counter)
    return counts / centers.shape[0]
