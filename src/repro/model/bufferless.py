"""The bufferless cost model (expected *node accesses* per query).

This is the metric of Kamel & Faloutsos [4] and Pagel et al. [9] that
the paper argues is insufficient on its own: the expected number of
nodes touched by a query, regardless of whether they are buffered.

Two variants are provided:

* :func:`expected_node_accesses` — the corrected model actually used in
  the paper (clipped probabilities of §3.1, or data-driven of §3.2),
  parameterised by a workload;
* :func:`kamel_faloutsos_estimate` — the original closed form (Eq. 2)
  ``A + qx·Ly + qy·Lx + M·qx·qy``, exposed both directly and through
  its area/extent decomposition, because it is the formula that links
  query cost to the total area and perimeter of the node MBRs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import combinations
from math import prod

import numpy as np

from ..rtree import TreeDescription
from .access import raw_region_probabilities

__all__ = [
    "Eq2Decomposition",
    "expected_node_accesses",
    "kamel_faloutsos_decomposition",
    "kamel_faloutsos_estimate",
]


def expected_node_accesses(desc: TreeDescription, workload) -> float:
    """``EPT`` — expected nodes (buffered or not) touched per query.

    ``workload`` is any object with an ``access_probabilities(rects)``
    method (see :mod:`repro.queries`); the expectation is simply the
    sum of per-node access probabilities over every level of the tree.
    """
    return float(np.sum(workload.access_probabilities(desc.all_rects)))


def kamel_faloutsos_estimate(
    desc: TreeDescription, extents: Sequence[float]
) -> float:
    """Eq. 2 of the paper — the original unclipped expectation.

    In d dimensions this is ``Σ_nodes Π_k (X_k + q_k)``; for 2-D it
    expands to ``A + qx·Ly + qy·Lx + M·qx·qy``.
    """
    return float(np.sum(raw_region_probabilities(desc.all_rects, extents)))


@dataclass(frozen=True)
class Eq2Decomposition:
    """The terms of Eq. 2, for inspection and testing.

    ``total`` equals ``sum_area + Σ_S (Π_{k∉S} q_k)·cross[S]`` where the
    2-D case reads ``A + qx·Ly + qy·Lx + M·qx·qy``.
    """

    sum_area: float
    """``A`` — sum of node MBR areas."""
    sum_extents: tuple[float, ...]
    """``(L_x, L_y, ...)`` — per-axis sums of node MBR extents."""
    total_nodes: int
    """``M`` — number of nodes."""
    extents: tuple[float, ...]
    """The query extents the decomposition was evaluated at."""
    total: float
    """The value of Eq. 2."""


def kamel_faloutsos_decomposition(
    desc: TreeDescription, extents: Sequence[float]
) -> Eq2Decomposition:
    """Eq. 2 with its area/extent/count terms broken out.

    The general-d expansion of ``Σ Π_k (X_k + q_k)`` is
    ``Σ_{S ⊆ axes} (Π_{k∉S} q_k) · Σ_nodes Π_{k∈S} X_k``; only the
    2-D-relevant aggregates (``A``, per-axis ``L``, ``M``) are exposed
    as fields, but ``total`` is exact in any dimension.
    """
    rects = desc.all_rects
    dim = rects.dim
    extents = tuple(float(q) for q in extents)
    if len(extents) != dim:
        raise ValueError(f"extents must have {dim} entries")
    node_extents = rects.extents()

    total = 0.0
    for r in range(dim + 1):
        for axes in combinations(range(dim), r):
            q_factor = prod(extents[k] for k in range(dim) if k not in axes)
            if axes:
                x_sum = float(np.sum(np.prod(node_extents[:, list(axes)], axis=1)))
            else:
                x_sum = float(len(rects))
            total += q_factor * x_sum

    return Eq2Decomposition(
        sum_area=rects.total_area(),
        sum_extents=tuple(rects.total_extent(k) for k in range(dim)),
        total_nodes=desc.total_nodes,
        extents=extents,
        total=total,
    )
