"""The generic bottom-up packing algorithm of the paper's §2.2.

Given an ordering rule, rectangles are placed into ``ceil(R / n)``
consecutive groups of ``n``, each group becoming a leaf node; the leaf
MBRs are then packed recursively "into nodes at the next level and up
until only the root node remains", re-applying the ordering at every
level.  The last group of a level may hold fewer than ``n`` entries.

Two entry points are provided:

* :func:`pack_description` — the fast path: computes only the per-level
  node MBRs (a :class:`~repro.rtree.TreeDescription`), which is all the
  analytical model needs.  Fully vectorised; packs 300k rectangles in
  milliseconds.
* :func:`pack_tree` — materialises a real, queryable
  :class:`~repro.rtree.RTree` with the identical structure.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..geometry import GeometryError, RectArray
from ..obs.spans import span
from ..rtree import Entry, Node, RTree, TreeDescription
from .orderings import ORDERINGS, Ordering

__all__ = ["pack_description", "pack_tree", "resolve_ordering"]


def resolve_ordering(ordering: str | Ordering) -> Ordering:
    """Look up an ordering by name, or pass a callable through."""
    if isinstance(ordering, str):
        try:
            return ORDERINGS[ordering]
        except KeyError:
            raise ValueError(
                f"unknown ordering {ordering!r}; choices: {sorted(ORDERINGS)}"
            ) from None
    return ordering


def _check_capacity(capacity: int) -> None:
    if capacity < 2:
        raise ValueError("node capacity must be at least 2")


def _group_mbrs(rects: RectArray, capacity: int) -> RectArray:
    """MBRs of consecutive groups of ``capacity`` rectangles."""
    boundaries = np.arange(0, len(rects), capacity)
    lo = np.minimum.reduceat(rects.lo, boundaries, axis=0)
    hi = np.maximum.reduceat(rects.hi, boundaries, axis=0)
    return RectArray(lo, hi)


def pack_description(
    data: RectArray, capacity: int, ordering: str | Ordering
) -> TreeDescription:
    """Per-level node MBRs of the tree a packing algorithm would build.

    Parameters
    ----------
    data:
        The input rectangles (leaf-level data).
    capacity:
        Node capacity ``n`` (one node per page).
    ordering:
        Ordering name (``"nx"``, ``"hs"``, ``"str"``) or callable.
    """
    _check_capacity(capacity)
    if len(data) == 0:
        raise GeometryError("cannot pack an empty data set")
    order_fn = resolve_ordering(ordering)

    with span(
        "packing.pack_description",
        ordering=ordering if isinstance(ordering, str) else order_fn.__name__,
        capacity=capacity,
        n_rects=len(data),
    ):
        levels: list[RectArray] = []
        current = data
        while True:
            # Levels are packed bottom-up; the level attr counts from
            # the leaves (0) because the tree height is unknown here.
            with span(
                "packing.level",
                level_from_leaves=len(levels),
                n_entries=len(current),
            ):
                perm = order_fn(current, capacity)
                nodes = _group_mbrs(current[perm], capacity)
            levels.append(nodes)
            if len(nodes) == 1:
                break
            current = nodes
        levels.reverse()
        return TreeDescription(tuple(levels))


def pack_tree(
    data: RectArray,
    capacity: int,
    ordering: str | Ordering,
    items: Sequence[Any] | None = None,
) -> RTree:
    """Build a real, queryable R-tree with the packed structure.

    ``items[i]`` is stored with ``data.rect(i)``; by default the item is
    the input index ``i``, which makes result checking in tests and
    examples straightforward.
    """
    _check_capacity(capacity)
    if len(data) == 0:
        raise GeometryError("cannot pack an empty data set")
    if items is not None and len(items) != len(data):
        raise ValueError("items must align one-to-one with data rectangles")
    order_fn = resolve_ordering(ordering)

    with span(
        "packing.pack_tree",
        ordering=ordering if isinstance(ordering, str) else order_fn.__name__,
        capacity=capacity,
        n_rects=len(data),
    ):
        perm = order_fn(data, capacity)
        nodes: list[Node] = []
        for start in range(0, len(data), capacity):
            group = perm[start : start + capacity]
            entries = [
                Entry(
                    data.rect(int(i)),
                    item=(items[int(i)] if items is not None else int(i)),
                )
                for i in group
            ]
            nodes.append(Node(is_leaf=True, entries=entries))
        height = 1

        while len(nodes) > 1:
            mbrs = RectArray.from_rects(node.mbr() for node in nodes)
            perm = order_fn(mbrs, capacity)
            parents: list[Node] = []
            for start in range(0, len(nodes), capacity):
                group = perm[start : start + capacity]
                entries = [
                    Entry(mbrs.rect(int(i)), child=nodes[int(i)])
                    for i in group
                ]
                parents.append(Node(is_leaf=False, entries=entries))
            nodes = parents
            height += 1

        return RTree._from_prebuilt(
            root=nodes[0],
            height=height,
            size=len(data),
            max_entries=capacity,
            min_entries=1,
        )
