"""Hilbert Sort (HS) packing — Kamel & Faloutsos [4].

Rectangle centers are ordered by their position along the Hilbert
space-filling curve; consecutive runs of ``capacity`` centers form the
nodes, at every level of the tree.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import RectArray
from ..rtree import RTree, TreeDescription
from .base import pack_description, pack_tree

__all__ = ["hs_description", "hs_tree"]


def hs_description(data: RectArray, capacity: int) -> TreeDescription:
    """Per-level node MBRs of the Hilbert-sort-packed tree."""
    return pack_description(data, capacity, "hs")


def hs_tree(
    data: RectArray, capacity: int, items: Sequence[Any] | None = None
) -> RTree:
    """A queryable Hilbert-sort-packed R-tree."""
    return pack_tree(data, capacity, "hs", items=items)
