"""Tuple-At-a-Time (TAT) loading.

"This algorithm simply inserts one tuple at a time into the R-tree
using the quadratic split heuristic of Guttman [3]" (§2.2).  The
resulting tree has worse space utilisation and structure than the
packed trees, which is exactly what makes it an interesting input to
the buffer model.

The linear split is also accepted, so split policies themselves can be
compared under the model (one of the paper's stated applications).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import GeometryError, Rect, RectArray
from ..obs.spans import span
from ..rtree import RTree, TreeDescription
from ..rtree.split import SplitFunction

__all__ = ["tat_tree", "tat_description"]


def tat_tree(
    data: RectArray | Sequence[Rect],
    capacity: int,
    items: Sequence[Any] | None = None,
    min_entries: int | None = None,
    split: str | SplitFunction = "quadratic",
) -> RTree:
    """Load a tree by repeated insertion (Guttman).

    ``items[i]`` defaults to the input index ``i``, matching the packed
    loaders.
    """
    rects = list(data) if not isinstance(data, RectArray) else list(data)
    if not rects:
        raise GeometryError("cannot load an empty data set")
    if items is not None and len(items) != len(rects):
        raise ValueError("items must align one-to-one with data rectangles")
    with span("packing.tat_build", capacity=capacity, n_rects=len(rects)):
        tree = RTree(
            max_entries=capacity, min_entries=min_entries, split=split
        )
        for i, rect in enumerate(rects):
            tree.insert(rect, items[i] if items is not None else i)
    return tree


def tat_description(
    data: RectArray | Sequence[Rect],
    capacity: int,
    min_entries: int | None = None,
    split: str | SplitFunction = "quadratic",
) -> TreeDescription:
    """Per-level node MBRs of the TAT-loaded tree.

    Unlike the packed loaders there is no fast path: the tree structure
    depends on the full insertion dynamics, so the tree is actually
    built.
    """
    tree = tat_tree(data, capacity, min_entries=min_entries, split=split)
    return TreeDescription.from_tree(tree)
