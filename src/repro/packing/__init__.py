"""R-tree loading algorithms: TAT, NX, HS, and STR.

A uniform facade is provided via :func:`load_tree` and
:func:`load_description` so experiments can select loaders by name.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import RectArray
from ..obs.spans import span
from ..rtree import RTree, TreeDescription
from ..rtree.rstar import rstar_tree
from .base import pack_description, pack_tree, resolve_ordering
from .hilbert_sort import hs_description, hs_tree
from .nearest_x import nx_description, nx_tree
from .orderings import (
    ORDERINGS,
    hilbert_order,
    nearest_x_order,
    str_order,
    zorder_order,
)
from .str_pack import str_description, str_tree
from .tat import tat_description, tat_tree

__all__ = [
    "LOADERS",
    "ORDERINGS",
    "hilbert_order",
    "hs_description",
    "hs_tree",
    "load_description",
    "load_tree",
    "nearest_x_order",
    "nx_description",
    "nx_tree",
    "pack_description",
    "pack_tree",
    "resolve_ordering",
    "rstar_tree",
    "str_description",
    "str_order",
    "str_tree",
    "tat_description",
    "tat_tree",
    "zorder_order",
]

LOADERS = ("tat", "rstar", "nx", "hs", "str", "zorder")
"""Loader names accepted by :func:`load_tree` / :func:`load_description`.

``tat`` and ``rstar`` insert one tuple at a time (Guttman quadratic and
the R* policy respectively); the rest are bottom-up packings.
"""


def load_tree(
    name: str,
    data: RectArray,
    capacity: int,
    items: Sequence[Any] | None = None,
) -> RTree:
    """Build a queryable R-tree with the named loading algorithm."""
    with span(
        "packing.load_tree", loader=name, capacity=capacity, n_rects=len(data)
    ):
        if name == "tat":
            return tat_tree(data, capacity, items=items)
        if name == "rstar":
            return rstar_tree(data, capacity, items=items)
        if name in ORDERINGS:
            return pack_tree(data, capacity, name, items=items)
        raise ValueError(f"unknown loader {name!r}; choices: {LOADERS}")


def load_description(
    name: str, data: RectArray, capacity: int
) -> TreeDescription:
    """Per-level node MBRs for the named loading algorithm.

    For packed loaders this uses the fast vectorised path; TAT and R*
    build the real tree (their structure depends on insertion
    dynamics).
    """
    with span(
        "packing.load_description",
        loader=name,
        capacity=capacity,
        n_rects=len(data),
    ):
        if name == "tat":
            return tat_description(data, capacity)
        if name == "rstar":
            return TreeDescription.from_tree(rstar_tree(data, capacity))
        if name in ORDERINGS:
            return pack_description(data, capacity, name)
        raise ValueError(f"unknown loader {name!r}; choices: {LOADERS}")
