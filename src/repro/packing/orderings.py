"""Orderings used by the bottom-up packing algorithms.

The paper's "General Algorithm" (§2.2) packs rectangles level by level
and notes that "the algorithms differ only in how the rectangles at
each level are ordered".  An ordering is therefore a callable

    ordering(rects: RectArray, capacity: int) -> permutation

returning the order in which rectangles are placed into consecutive
nodes of ``capacity`` entries.  Most orderings ignore ``capacity``;
STR needs it to size its slabs.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..geometry import RectArray
from ..hilbert import hilbert_sort_key, morton_sort_key

__all__ = [
    "Ordering",
    "ORDERINGS",
    "hilbert_order",
    "nearest_x_order",
    "str_order",
    "zorder_order",
]

Ordering = Callable[[RectArray, int], np.ndarray]


def nearest_x_order(rects: RectArray, capacity: int) -> np.ndarray:
    """Nearest-X (NX): sort by the x-coordinate of rectangle centers.

    Roussopoulos & Leifker [12] give no details, so — like the paper —
    we use the center's x-coordinate.  The sort is stable, so equal
    keys keep their input order (deterministic packing).
    """
    del capacity
    return np.argsort(rects.centers()[:, 0], kind="stable")


def hilbert_order(rects: RectArray, capacity: int) -> np.ndarray:
    """Hilbert Sort (HS): sort centers by position along the Hilbert curve.

    Kamel & Faloutsos [4]: "the center points of the rectangles are
    sorted based on their distance from the origin as measured along
    the Hilbert curve."
    """
    del capacity
    keys = hilbert_sort_key(rects.centers())
    return np.argsort(keys, kind="stable")


def zorder_order(rects: RectArray, capacity: int) -> np.ndarray:
    """Z-order (Morton) packing — the baseline Hilbert sort improved on.

    Kamel & Faloutsos motivated Hilbert packing by its better locality
    than bit-interleaved Z-order; this ordering lets the benchmark
    suite quantify that gap under the buffer model (an extension).
    """
    del capacity
    keys = morton_sort_key(rects.centers())
    return np.argsort(keys, kind="stable")


def str_order(rects: RectArray, capacity: int) -> np.ndarray:
    """Sort-Tile-Recursive (STR) of Leutenegger, López & Edgington [7].

    With ``P = ceil(n / capacity)`` pages and ``r`` axes left, the data
    is sorted on the current axis, cut into ``ceil(P ** (1/r))`` slabs
    of (nearly) equal cardinality, and each slab is ordered recursively
    on the remaining axes.  Included as an extension: the paper cites
    STR as one of the loading algorithms its model can evaluate.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    centers = rects.centers()
    n, dim = centers.shape
    return _str_ranked(np.arange(n, dtype=np.int64), centers, capacity, 0, dim)


def _str_ranked(
    idx: np.ndarray,
    centers: np.ndarray,
    capacity: int,
    axis: int,
    dim: int,
) -> np.ndarray:
    """The STR ordering of ``idx``, recursing over the remaining axes."""
    ranked = idx[np.argsort(centers[idx, axis], kind="stable")]
    if axis == dim - 1:
        return ranked
    n = len(ranked)
    pages = math.ceil(n / capacity)
    remaining_axes = dim - axis
    slabs = max(1, math.ceil(pages ** (1.0 / remaining_axes)))
    slab_size = math.ceil(n / slabs)
    parts = [
        _str_ranked(ranked[lo : lo + slab_size], centers, capacity, axis + 1, dim)
        for lo in range(0, n, slab_size)
    ]
    return np.concatenate(parts)


ORDERINGS: dict[str, Ordering] = {
    "nx": nearest_x_order,
    "hs": hilbert_order,
    "str": str_order,
    "zorder": zorder_order,
}
"""Registry of packing orderings by short name."""
