"""Sort-Tile-Recursive (STR) packing — Leutenegger, López & Edgington [7].

Included as an extension: STR is the authors' own follow-up loader and
one of the "loading algorithms [4], [7], [12]" the paper says its
buffer model can evaluate.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import RectArray
from ..rtree import RTree, TreeDescription
from .base import pack_description, pack_tree

__all__ = ["str_description", "str_tree"]


def str_description(data: RectArray, capacity: int) -> TreeDescription:
    """Per-level node MBRs of the STR-packed tree."""
    return pack_description(data, capacity, "str")


def str_tree(
    data: RectArray, capacity: int, items: Sequence[Any] | None = None
) -> RTree:
    """A queryable STR-packed R-tree."""
    return pack_tree(data, capacity, "str", items=items)
