"""Nearest-X (NX) packing — Roussopoulos & Leifker [12].

Rectangles are sorted by the x-coordinate of their centers and packed
into nodes in that order, at every level of the tree.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..geometry import RectArray
from ..rtree import RTree, TreeDescription
from .base import pack_description, pack_tree

__all__ = ["nx_description", "nx_tree"]


def nx_description(data: RectArray, capacity: int) -> TreeDescription:
    """Per-level node MBRs of the NX-packed tree."""
    return pack_description(data, capacity, "nx")


def nx_tree(
    data: RectArray, capacity: int, items: Sequence[Any] | None = None
) -> RTree:
    """A queryable NX-packed R-tree."""
    return pack_tree(data, capacity, "nx", items=items)
