"""Query workloads: uniform point, uniform region, and data-driven.

A workload bundles the two views of a query distribution that the rest
of the library needs:

* the **analytic** view — :meth:`QueryWorkload.access_probabilities`
  returns ``A^Q_ij`` for an array of node MBRs (delegating to
  :mod:`repro.model.access`), and
* the **simulation** view — every one of the paper's query models is
  equivalent to a *point* test against suitably transformed node MBRs
  (Fig. 2 for uniform region queries, Fig. 4 for data-driven ones), so
  a workload exposes :meth:`transformed_rects` plus a point sampler and
  the §4 simulator only ever does point-in-rectangle tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from ..accel import SortedRangeCounter
from ..geometry import GeometryError, RectArray
from ..model.access import (
    data_driven_probabilities,
    query_corner_domain,
    uniform_region_probabilities,
)

__all__ = [
    "DataDrivenWorkload",
    "QueryWorkload",
    "UniformPointWorkload",
    "UniformRegionWorkload",
]


class QueryWorkload(ABC):
    """A distribution over spatial queries of fixed size."""

    def __init__(self, extents: Sequence[float]) -> None:
        extents = tuple(float(q) for q in extents)
        if not extents:
            raise GeometryError("query extents must have >= 1 dimension")
        if any(q < 0 for q in extents):
            raise GeometryError("query extents must be non-negative")
        if any(q >= 1 for q in extents):
            raise GeometryError("query extents must be smaller than the unit cube")
        self.extents = extents

    @property
    def dim(self) -> int:
        """Dimensionality of the query space."""
        return len(self.extents)

    @property
    def is_point(self) -> bool:
        """True when every query extent is zero."""
        return all(q == 0.0 for q in self.extents)

    @abstractmethod
    def access_probabilities(self, rects: RectArray) -> np.ndarray:
        """``A^Q_ij`` for each node MBR in ``rects``."""

    @abstractmethod
    def transformed_rects(self, rects: RectArray) -> RectArray:
        """Node MBRs transformed so queries reduce to point tests."""

    @abstractmethod
    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """``(n, d)`` representative points, one per query."""


class UniformRegionWorkload(QueryWorkload):
    """Region queries of size ``q`` uniform over the unit cube (§3.1).

    The query's top-right corner is uniform over
    ``U' = Π_k [q_k, 1]``, so the whole region fits within ``U``;
    a query touches a node iff the corner lies in the node's extended
    MBR (Fig. 2).
    """

    def access_probabilities(self, rects: RectArray) -> np.ndarray:
        self._check_dim(rects)
        return uniform_region_probabilities(rects, self.extents)

    def transformed_rects(self, rects: RectArray) -> RectArray:
        self._check_dim(rects)
        return rects.extended(self.extents)

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        domain = query_corner_domain(self.extents, self.dim)
        lo = np.asarray(domain.lo)
        hi = np.asarray(domain.hi)
        return lo + rng.random((n, self.dim)) * (hi - lo)

    def _check_dim(self, rects: RectArray) -> None:
        if rects.dim != self.dim:
            raise GeometryError(
                f"workload is {self.dim}-D but rects are {rects.dim}-D"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        q = "x".join(f"{e:g}" for e in self.extents)
        return f"UniformRegionWorkload({q})"


class UniformPointWorkload(UniformRegionWorkload):
    """Point queries uniform over the unit cube — regions of size zero."""

    def __init__(self, dim: int = 2) -> None:
        super().__init__((0.0,) * dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformPointWorkload(dim={self.dim})"


class DataDrivenWorkload(QueryWorkload):
    """Queries centred on the centres of the data rectangles (§3.2).

    "A query is always a ``qx × qy`` rectangle with center ``c_j``,
    where ``j`` is uniformly chosen at random" — so densely populated
    areas are queried more often, mimicking how researchers access
    data sets like the CFD grid.

    Parameters
    ----------
    centers:
        ``(n, d)`` array of data rectangle centres.
    extents:
        Query side lengths (all zeros for point queries).
    """

    def __init__(self, centers: np.ndarray, extents: Sequence[float]) -> None:
        super().__init__(extents)
        centers = np.asarray(centers, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != self.dim:
            raise GeometryError(
                f"centers must be (n, {self.dim}); got shape {centers.shape}"
            )
        if centers.shape[0] == 0:
            raise GeometryError("data-driven workloads need at least one center")
        self.centers = centers
        # The centres never change, so the sorted range-count structure
        # is built once (lazily) and shared by every access_probabilities
        # call — fig7/fig8 sweep several query sizes over one centre set.
        self._counter: SortedRangeCounter | None = None

    @classmethod
    def from_rects(
        cls, data: RectArray, extents: Sequence[float] | None = None
    ) -> "DataDrivenWorkload":
        """Build from the data rectangles themselves (point queries default)."""
        if extents is None:
            extents = (0.0,) * data.dim
        return cls(data.centers(), extents)

    _COUNTER_MIN_POINTS = 1024
    """Build the cached range counter only for centre sets at least
    this large; tiny sets are cheaper on the dense kernel."""

    def access_probabilities(self, rects: RectArray) -> np.ndarray:
        if rects.dim != self.dim:
            raise GeometryError(
                f"workload is {self.dim}-D but rects are {rects.dim}-D"
            )
        if (
            self._counter is None
            and self.dim <= 2
            and self.centers.shape[0] >= self._COUNTER_MIN_POINTS
        ):
            self._counter = SortedRangeCounter(self.centers)
        return data_driven_probabilities(
            rects, self.centers, self.extents, counter=self._counter
        )

    def transformed_rects(self, rects: RectArray) -> RectArray:
        if rects.dim != self.dim:
            raise GeometryError(
                f"workload is {self.dim}-D but rects are {rects.dim}-D"
            )
        return rects.expanded_centered(self.extents)

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        picks = rng.integers(self.centers.shape[0], size=n)
        return self.centers[picks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        q = "x".join(f"{e:g}" for e in self.extents)
        return f"DataDrivenWorkload(n={self.centers.shape[0]}, q={q})"
