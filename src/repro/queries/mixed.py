"""Probabilistic mixtures of query workloads.

Real applications rarely issue a single query shape: a GIS session
mixes point lookups with pans and zooms of several sizes.  A
:class:`MixedWorkload` draws each query from one of several component
workloads with fixed probabilities.

The analytic side is exact: if a query comes from component ``i`` with
probability ``w_i``, the probability that it touches node ``R`` is
``Σ_i w_i · A^Q_i(R)``, so every buffer-model formula applies
unchanged.  The simulation side cannot use a single transformed
rectangle set (each component transforms the node MBRs differently),
so the simulator special-cases mixtures: it assigns a component to
each query and tests each against its component's transformed rects,
preserving the query order seen by the buffer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..geometry import GeometryError, RectArray
from .workloads import QueryWorkload

__all__ = ["MixedWorkload"]


class MixedWorkload(QueryWorkload):
    """A weighted mixture of query workloads.

    Parameters
    ----------
    components:
        ``(weight, workload)`` pairs; weights must be positive and are
        normalised to sum to 1.  All components must share one
        dimensionality.

    Examples
    --------
    >>> from repro.queries import UniformPointWorkload, UniformRegionWorkload
    >>> w = MixedWorkload([
    ...     (0.8, UniformPointWorkload()),
    ...     (0.2, UniformRegionWorkload((0.1, 0.1))),
    ... ])
    """

    def __init__(
        self, components: Sequence[tuple[float, QueryWorkload]]
    ) -> None:
        if not components:
            raise GeometryError("a mixture needs at least one component")
        weights = np.array([w for w, _ in components], dtype=np.float64)
        if (weights <= 0).any():
            raise GeometryError("mixture weights must be positive")
        workloads = [wl for _, wl in components]
        dim = workloads[0].dim
        if any(wl.dim != dim for wl in workloads):
            raise GeometryError("mixture components must share dimensionality")
        # The nominal "extents" of a mixture are not meaningful; use
        # zeros of the right dimensionality to satisfy the base class.
        super().__init__((0.0,) * dim)
        self.weights = weights / weights.sum()
        self.workloads = tuple(workloads)

    @property
    def is_point(self) -> bool:
        """True only if every component issues point queries."""
        return all(wl.is_point for wl in self.workloads)

    # ------------------------------------------------------------------
    # Analytic view — exact by the law of total probability.
    # ------------------------------------------------------------------
    def access_probabilities(self, rects: RectArray) -> np.ndarray:
        total = np.zeros(len(rects), dtype=np.float64)
        for weight, workload in zip(self.weights, self.workloads):
            total += weight * workload.access_probabilities(rects)
        return total

    # ------------------------------------------------------------------
    # Simulation view — the engine dispatches on these.
    # ------------------------------------------------------------------
    def transformed_rects(self, rects: RectArray) -> RectArray:
        raise NotImplementedError(
            "a mixture has no single point-test transform; the simulator "
            "uses per-component transforms via component_transforms()"
        )

    def sample_points(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError(
            "mixtures are sampled per component; see sample_assignments()"
        )

    def component_transforms(self, rects: RectArray) -> list[RectArray]:
        """Transformed node MBRs, one array per component."""
        return [wl.transformed_rects(rects) for wl in self.workloads]

    def sample_assignments(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Which component each of ``n`` queries is drawn from."""
        return rng.choice(len(self.workloads), size=n, p=self.weights)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(
            f"{w:.2f}*{wl!r}" for w, wl in zip(self.weights, self.workloads)
        )
        return f"MixedWorkload({parts})"
