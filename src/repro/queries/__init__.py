"""Query workload distributions."""

from .mixed import MixedWorkload
from .workloads import (
    DataDrivenWorkload,
    QueryWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)

__all__ = [
    "DataDrivenWorkload",
    "MixedWorkload",
    "QueryWorkload",
    "UniformPointWorkload",
    "UniformRegionWorkload",
]
