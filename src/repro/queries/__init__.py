"""Query workload distributions."""

from __future__ import annotations

from .mixed import MixedWorkload
from .workloads import (
    DataDrivenWorkload,
    QueryWorkload,
    UniformPointWorkload,
    UniformRegionWorkload,
)

__all__ = [
    "DataDrivenWorkload",
    "MixedWorkload",
    "QueryWorkload",
    "UniformPointWorkload",
    "UniformRegionWorkload",
]
