"""A synthetic substitute for the TIGER / Long Beach data set.

The paper uses the Long Beach County road data from the U.S. Census
TIGER system: 53,145 small rectangles (bounding boxes of road
segments).  The original file is not shipped here, so this module
synthesises a data set engineered to have the properties the paper's
experiments actually exploit:

* exactly 53,145 rectangles by default, so the packed tree structure
  at node capacity 100 matches the paper (532 leaf pages, 6 level-1
  pages, 1 root);
* street-grid geometry at TIGER granularity: every rectangle is a
  *block-level* segment box (TIGER splits even arterials at every
  intersection), so all extents are small;
* "large portions of empty space in the data set" (§5.4) — a sizeable
  part of the unit square carries no data, so uniform queries are often
  pruned near the root while data-driven queries always land on data;
* enough variance in node MBR areas that some nodes are "hot" under
  uniform queries.

See DESIGN.md §4 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from ..geometry import RectArray

__all__ = ["TIGER_SIZE", "tiger_like"]

TIGER_SIZE = 53_145
"""Rectangle count of the original Long Beach data set."""

_N_CLUSTERS = 24
_ARTERIAL_FRACTION = 0.08
_SEGMENT_LENGTH = (0.002, 0.012)
_SEGMENT_THICKNESS = 0.0006
_CLUSTER_SPREAD = (0.02, 0.07)


def tiger_like(
    n: int = TIGER_SIZE,
    rng: np.random.Generator | int | None = None,
) -> RectArray:
    """Generate ``n`` Long-Beach-like road-segment rectangles.

    Deterministic for a given seed (default 1998).  Segments falling
    outside the unit square are rejected and resampled, so no mass
    piles up on the boundary.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(1998 if rng is None else rng)

    # Urban clusters confined to an L-shaped "city" so that a large
    # contiguous part of the square (the "ocean") stays empty.
    centers = np.empty((_N_CLUSTERS, 2))
    for i in range(_N_CLUSTERS):
        while True:
            c = rng.random(2)
            if _in_city(c):
                centers[i] = c
                break
    weights = rng.dirichlet(np.full(_N_CLUSTERS, 1.2))
    spreads = _CLUSTER_SPREAD[0] + rng.random(_N_CLUSTERS) * (
        _CLUSTER_SPREAD[1] - _CLUSTER_SPREAD[0]
    )

    lo_parts: list[np.ndarray] = []
    hi_parts: list[np.ndarray] = []
    total = 0
    while total < n:
        batch = max(8192, (n - total) * 2)
        mids, extents = _sample_segments(rng, batch, centers, weights, spreads)
        lo = mids - extents / 2.0
        hi = mids + extents / 2.0
        keep = np.all(lo >= 0.0, axis=1) & np.all(hi <= 1.0, axis=1)
        lo_parts.append(lo[keep])
        hi_parts.append(hi[keep])
        total += int(keep.sum())
    lo = np.concatenate(lo_parts, axis=0)[:n]
    hi = np.concatenate(hi_parts, axis=0)[:n]
    # Snug the data into the unit square, as the paper normalises all
    # data sets.
    return RectArray(lo, hi).normalized()


def _sample_segments(
    rng: np.random.Generator,
    count: int,
    centers: np.ndarray,
    weights: np.ndarray,
    spreads: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Midpoints and box extents of ``count`` candidate road segments."""
    n_arterial = int(count * _ARTERIAL_FRACTION)
    n_street = count - n_arterial
    lengths = _SEGMENT_LENGTH[0] + rng.random(count) * (
        _SEGMENT_LENGTH[1] - _SEGMENT_LENGTH[0]
    )

    # Local streets: grid-aligned segments scattered around a cluster.
    cluster_of = rng.choice(len(centers), size=n_street, p=weights)
    street_mids = centers[cluster_of] + rng.normal(
        scale=spreads[cluster_of][:, None], size=(n_street, 2)
    )
    horizontal = rng.random(n_street) < 0.5
    thickness = rng.random(n_street) * _SEGMENT_THICKNESS
    street_extents = np.empty((n_street, 2))
    street_extents[:, 0] = np.where(horizontal, lengths[:n_street], thickness)
    street_extents[:, 1] = np.where(horizontal, thickness, lengths[:n_street])

    # Arterials: TIGER splits long roads at every crossing, so an
    # arterial is a *chain* of short segments along an inter-cluster
    # line; each segment's box is oriented along the line direction.
    a = rng.choice(len(centers), size=n_arterial)
    b = rng.choice(len(centers), size=n_arterial)
    t = rng.random(n_arterial)[:, None]
    art_mids = centers[a] * t + centers[b] * (1.0 - t)
    art_mids += rng.normal(scale=0.002, size=(n_arterial, 2))
    direction = centers[b] - centers[a]
    norms = np.linalg.norm(direction, axis=1, keepdims=True)
    norms[norms[:, 0] == 0.0] = 1.0
    direction = np.abs(direction / norms)
    art_lengths = lengths[n_street:][:, None]
    art_thickness = (rng.random(n_arterial) * _SEGMENT_THICKNESS)[:, None]
    art_extents = direction * art_lengths + art_thickness

    mids = np.concatenate([street_mids, art_mids], axis=0)
    extents = np.concatenate([street_extents, art_extents], axis=0)
    return mids, extents


def _in_city(point: np.ndarray) -> bool:
    """The L-shaped urban region: west strip plus south strip.

    Covers roughly half the unit square; the north-east block is
    "ocean" and stays empty.
    """
    x, y = point
    return x <= 0.55 or y <= 0.35
