"""Data set generators and I/O (paper §5.1 + substitutes)."""

from __future__ import annotations

from .cfd import CFD_SIZE, Airfoil, WING_ELEMENTS, cfd_like
from .io import (
    load_rects,
    load_rects_npz,
    open_mmap,
    save_mmap,
    save_rects,
    save_rects_npz,
)
from .synthetic import REGION_MAX_SIDE, synthetic_point, synthetic_region
from .tiger import TIGER_SIZE, tiger_like

__all__ = [
    "Airfoil",
    "CFD_SIZE",
    "REGION_MAX_SIDE",
    "TIGER_SIZE",
    "WING_ELEMENTS",
    "cfd_like",
    "load_rects",
    "load_rects_npz",
    "open_mmap",
    "save_mmap",
    "save_rects",
    "save_rects_npz",
    "synthetic_point",
    "synthetic_region",
    "tiger_like",
]
