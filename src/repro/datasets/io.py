"""Reading and writing rectangle data sets.

Two formats:

* a plain whitespace text format (one rectangle per line:
  ``lo_0 ... lo_{d-1} hi_0 ... hi_{d-1}``) for interchange with other
  tools and for eyeballing, and
* numpy ``.npz`` for fast exact round-trips.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..geometry import GeometryError, RectArray

__all__ = ["load_rects", "load_rects_npz", "save_rects", "save_rects_npz"]


def save_rects(path: str | Path, rects: RectArray) -> None:
    """Write a :class:`RectArray` in the text format."""
    path = Path(path)
    dim = rects.dim
    with path.open("w", encoding="ascii") as f:
        f.write(f"# repro rects dim={dim} n={len(rects)}\n")
        for lo, hi in zip(rects.lo, rects.hi):
            coords = " ".join(repr(float(v)) for v in (*lo, *hi))
            f.write(coords + "\n")


def load_rects(path: str | Path) -> RectArray:
    """Read a :class:`RectArray` from the text format.

    Lines starting with ``#`` are comments; each data line must hold
    ``2 * d`` floats.  The dimensionality is inferred from the first
    data line.
    """
    path = Path(path)
    lo_rows: list[list[float]] = []
    hi_rows: list[list[float]] = []
    dim: int | None = None
    with path.open("r", encoding="ascii") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) % 2 != 0:
                raise GeometryError(
                    f"{path}:{line_no}: odd number of coordinates"
                )
            if dim is None:
                dim = len(fields) // 2
            elif len(fields) != 2 * dim:
                raise GeometryError(
                    f"{path}:{line_no}: expected {2 * dim} coordinates, "
                    f"got {len(fields)}"
                )
            values = [float(v) for v in fields]
            lo_rows.append(values[:dim])
            hi_rows.append(values[dim:])
    if dim is None:
        raise GeometryError(f"{path}: no rectangles found")
    return RectArray(np.array(lo_rows), np.array(hi_rows))


def save_rects_npz(path: str | Path, rects: RectArray) -> None:
    """Write a :class:`RectArray` as a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), lo=rects.lo, hi=rects.hi)


def load_rects_npz(path: str | Path) -> RectArray:
    """Read a :class:`RectArray` written by :func:`save_rects_npz`."""
    with np.load(Path(path)) as data:
        return RectArray(data["lo"], data["hi"])
