"""Reading and writing rectangle data sets.

Three formats:

* a plain whitespace text format (one rectangle per line:
  ``lo_0 ... lo_{d-1} hi_0 ... hi_{d-1}``) for interchange with other
  tools and for eyeballing,
* numpy ``.npz`` for fast exact round-trips, and
* a single uncompressed ``.npy`` of shape ``(2, n, d)`` for
  **zero-copy memory-mapped** access (:func:`save_mmap` /
  :func:`open_mmap`): the sharded sweep's worker processes all map
  the same file, so a data set is materialised in RAM once — in the
  OS page cache — no matter how many processes read it (see
  ``docs/PARALLELISM.md``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..geometry import GeometryError, RectArray

__all__ = [
    "load_rects",
    "load_rects_npz",
    "open_mmap",
    "save_mmap",
    "save_rects",
    "save_rects_npz",
]


def save_rects(path: str | Path, rects: RectArray) -> None:
    """Write a :class:`RectArray` in the text format."""
    path = Path(path)
    dim = rects.dim
    with path.open("w", encoding="ascii") as f:
        f.write(f"# repro rects dim={dim} n={len(rects)}\n")
        for lo, hi in zip(rects.lo, rects.hi):
            coords = " ".join(repr(float(v)) for v in (*lo, *hi))
            f.write(coords + "\n")


def load_rects(path: str | Path) -> RectArray:
    """Read a :class:`RectArray` from the text format.

    Lines starting with ``#`` are comments; each data line must hold
    ``2 * d`` floats.  The dimensionality is inferred from the first
    data line.
    """
    path = Path(path)
    lo_rows: list[list[float]] = []
    hi_rows: list[list[float]] = []
    dim: int | None = None
    with path.open("r", encoding="ascii") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) % 2 != 0:
                raise GeometryError(
                    f"{path}:{line_no}: odd number of coordinates"
                )
            if dim is None:
                dim = len(fields) // 2
            elif len(fields) != 2 * dim:
                raise GeometryError(
                    f"{path}:{line_no}: expected {2 * dim} coordinates, "
                    f"got {len(fields)}"
                )
            values = [float(v) for v in fields]
            lo_rows.append(values[:dim])
            hi_rows.append(values[dim:])
    if dim is None:
        raise GeometryError(f"{path}: no rectangles found")
    return RectArray(np.array(lo_rows), np.array(hi_rows))


def save_rects_npz(path: str | Path, rects: RectArray) -> None:
    """Write a :class:`RectArray` as a compressed ``.npz`` file."""
    np.savez_compressed(Path(path), lo=rects.lo, hi=rects.hi)


def load_rects_npz(path: str | Path) -> RectArray:
    """Read a :class:`RectArray` written by :func:`save_rects_npz`."""
    with np.load(Path(path)) as data:
        return RectArray(data["lo"], data["hi"])


def save_mmap(path: str | Path, rects: RectArray) -> Path:
    """Write a :class:`RectArray` for zero-copy :func:`open_mmap`.

    The file is one uncompressed ``.npy`` array of shape
    ``(2, n, d)`` — ``[0]`` the ``lo`` planes, ``[1]`` the ``hi``
    planes — so a single ``mmap`` covers both.  Returns the actual
    path written (numpy appends ``.npy`` when the suffix is missing).
    The round-trip is bit-exact: float64 in, the identical float64
    out, whether loaded through :func:`open_mmap` or plain
    ``np.load``.
    """
    path = Path(path)
    np.save(path, np.stack([rects.lo, rects.hi]))
    return path if path.suffix == ".npy" else path.with_suffix(
        path.suffix + ".npy"
    )


def open_mmap(path: str | Path) -> RectArray:
    """Open a :func:`save_mmap` file as a memory-mapped RectArray.

    The returned array's ``lo``/``hi`` are *read-only views of the
    file* (``np.load(..., mmap_mode="r")``): nothing is copied, pages
    fault in on first touch and are shared through the OS page cache
    across every process that opens the same path — which is what
    lets sharded-sweep workers attach to a data set without pickling
    a single rectangle.  Validation (shape, NaN, ``lo <= hi``) runs
    on open via :meth:`RectArray.from_readonly`; the mapping lives
    exactly as long as the returned object (the views keep it alive —
    no explicit close, ownership transfers to the caller).
    """
    path = Path(path)
    data = np.load(path, mmap_mode="r")
    if data.ndim != 3 or data.shape[0] != 2:
        raise GeometryError(
            f"{path}: expected a (2, n, d) rect array, got {data.shape}"
        )
    if data.dtype != np.float64:
        raise GeometryError(f"{path}: expected float64, got {data.dtype}")
    return RectArray.from_readonly(data[0], data[1])
