"""A synthetic substitute for the CFD (Boeing 737 wing section) data set.

The paper's CFD data is an unstructured computational-fluid-dynamics
grid around a wing cross-section with flaps out: 52,510 mesh nodes,
"dense in areas of great change ... and sparse in areas of little
change", with blank oval regions inside the wing elements (Fig. 5).
The original file (the authors' university URL) is long gone, so this
module synthesises a landing-configuration airfoil system — a main
element plus two deflected flap elements — and samples mesh-like points
with density decaying away from the element surfaces:

* most points hug the element boundaries (boundary-layer resolution),
  using a mixture of exponential offset scales so density falls off
  smoothly with distance;
* a wake region trails the elements;
* a sparse far field covers the rest of the domain;
* no points fall *inside* an element (the blank ovals of Fig. 5).

What the experiments need from this data is its skew: a few huge
sparse MBRs covering mostly-empty space and many tiny dense ones near
the wing, which is what produces the paper's §5.4 contrast between
uniform and data-driven queries.  See DESIGN.md §4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..geometry import RectArray

__all__ = ["CFD_SIZE", "Airfoil", "WING_ELEMENTS", "cfd_like"]

CFD_SIZE = 52_510
"""Mesh-node count of the original CFD data set."""


@dataclass(frozen=True)
class Airfoil:
    """A NACA-00xx-style airfoil element placed in the plane."""

    leading_edge: tuple[float, float]
    """Position of the leading edge."""
    chord: float
    """Chord length."""
    angle: float
    """Deflection angle in radians (positive = trailing edge down)."""
    thickness: float
    """Maximum thickness as a fraction of the chord."""

    def surface_point(self, s: np.ndarray, upper: np.ndarray) -> np.ndarray:
        """Surface points at chordwise parameters ``s`` in [0, 1]."""
        xc = s
        yt = self._thickness_profile(xc)
        y_local = np.where(upper, yt, -yt) * self.chord
        x_local = xc * self.chord
        return self._to_world(x_local, y_local)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points strictly inside the element body."""
        x_local, y_local = self._to_local(points)
        xc = x_local / self.chord
        inside_chord = (xc > 0.0) & (xc < 1.0)
        yt = np.zeros_like(xc)
        yt[inside_chord] = self._thickness_profile(xc[inside_chord])
        return inside_chord & (np.abs(y_local) < yt * self.chord)

    def _thickness_profile(self, xc: np.ndarray) -> np.ndarray:
        """NACA four-digit symmetric thickness distribution (half-width)."""
        t = self.thickness
        return (
            5.0
            * t
            * (
                0.2969 * np.sqrt(xc)
                - 0.1260 * xc
                - 0.3516 * xc**2
                + 0.2843 * xc**3
                - 0.1015 * xc**4
            )
        )

    def _to_world(self, x_local: np.ndarray, y_local: np.ndarray) -> np.ndarray:
        cos_a, sin_a = math.cos(self.angle), math.sin(self.angle)
        x = self.leading_edge[0] + x_local * cos_a + y_local * sin_a
        y = self.leading_edge[1] - x_local * sin_a + y_local * cos_a
        return np.column_stack([x, y])

    def _to_local(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cos_a, sin_a = math.cos(self.angle), math.sin(self.angle)
        dx = points[:, 0] - self.leading_edge[0]
        dy = points[:, 1] - self.leading_edge[1]
        x_local = dx * cos_a - dy * sin_a
        y_local = dx * sin_a + dy * cos_a
        return x_local, y_local


WING_ELEMENTS: tuple[Airfoil, ...] = (
    # Main element, slight nose-down attitude.
    Airfoil(leading_edge=(0.30, 0.55), chord=0.28, angle=0.05, thickness=0.14),
    # Fore flap, deflected.
    Airfoil(leading_edge=(0.57, 0.52), chord=0.12, angle=0.45, thickness=0.10),
    # Aft flap, deflected further.
    Airfoil(leading_edge=(0.66, 0.46), chord=0.08, angle=0.75, thickness=0.09),
)
"""The landing-configuration wing section: main element + two flaps."""

_ELEMENT_WEIGHTS = (0.58, 0.17, 0.10)
_WAKE_WEIGHT = 0.07
_FARFIELD_WEIGHT = 0.08
_OFFSET_SCALES = (0.0015, 0.008, 0.04)
_OFFSET_MIX = (0.62, 0.28, 0.10)


def cfd_like(
    n: int = CFD_SIZE,
    rng: np.random.Generator | int | None = None,
) -> RectArray:
    """Generate ``n`` CFD-mesh-like points as degenerate rectangles.

    Deterministic for a given seed (default 737).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(737 if rng is None else rng)

    weights = np.array(_ELEMENT_WEIGHTS + (_WAKE_WEIGHT, _FARFIELD_WEIGHT))
    weights = weights / weights.sum()

    accepted: list[np.ndarray] = []
    total = 0
    while total < n:
        batch = max(4096, (n - total) * 2)
        points = _sample_batch(rng, batch, weights)
        keep = ~_inside_any_element(points)
        keep &= np.all((points >= 0.0) & (points <= 1.0), axis=1)
        points = points[keep]
        accepted.append(points)
        total += len(points)
    points = np.concatenate(accepted, axis=0)[:n]
    return RectArray.from_points(points).normalized()


def _sample_batch(
    rng: np.random.Generator, count: int, weights: np.ndarray
) -> np.ndarray:
    kind = rng.choice(len(weights), size=count, p=weights)
    points = np.empty((count, 2))
    for k, element in enumerate(WING_ELEMENTS):
        mask = kind == k
        points[mask] = _near_surface(rng, int(mask.sum()), element)
    wake = kind == len(WING_ELEMENTS)
    points[wake] = _wake_points(rng, int(wake.sum()))
    far = kind == len(WING_ELEMENTS) + 1
    points[far] = rng.random((int(far.sum()), 2))
    return points


def _near_surface(
    rng: np.random.Generator, count: int, element: Airfoil
) -> np.ndarray:
    if count == 0:
        return np.empty((0, 2))
    # Cosine spacing concentrates samples at leading and trailing
    # edges, as unstructured CFD meshes do.
    u = rng.random(count)
    s = (1.0 - np.cos(math.pi * u)) / 2.0
    upper = rng.random(count) < 0.5
    base = element.surface_point(s, upper)
    scale_idx = rng.choice(len(_OFFSET_SCALES), size=count, p=_OFFSET_MIX)
    scales = np.asarray(_OFFSET_SCALES)[scale_idx]
    distance = rng.exponential(scales)
    direction = rng.normal(size=(count, 2))
    norms = np.linalg.norm(direction, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return base + direction / norms * distance[:, None]


def _wake_points(rng: np.random.Generator, count: int) -> np.ndarray:
    """Points trailing downstream of the aft flap."""
    if count == 0:
        return np.empty((0, 2))
    aft = WING_ELEMENTS[-1]
    trailing = aft.surface_point(np.ones(count), np.zeros(count, dtype=bool))
    along = rng.exponential(0.08, size=count)
    spread = rng.normal(scale=0.01 + 0.15 * along, size=count)
    x = trailing[:, 0] + along
    y = trailing[:, 1] - 0.4 * along + spread
    return np.column_stack([x, y])


def _inside_any_element(points: np.ndarray) -> np.ndarray:
    inside = np.zeros(len(points), dtype=bool)
    for element in WING_ELEMENTS:
        inside |= element.contains(points)
    return inside
