"""Synthetic data sets from the paper's §5.1.

* **Synthetic Region**: squares whose side is uniform in ``(0, ρ]``
  with ``ρ = 2·sqrt(0.25/10000) = 0.01``, fixed for all data set sizes
  "similar to the experimental methodology used in [4]".  (With this
  recipe the paper quotes the total covered area as ~0.25 of the unit
  square per 10,000 rectangles, computing with the mean side; the exact
  expectation is ``n·ρ²/3``.)
* **Synthetic Point**: points "located with equal probability on any
  location within the unit square".
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry import RectArray

__all__ = ["REGION_MAX_SIDE", "synthetic_point", "synthetic_region"]

REGION_MAX_SIDE = 2.0 * math.sqrt(0.25 / 10000.0)
"""ρ — the maximum square side of the synthetic region data (= 0.01)."""


def _resolve_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(0 if rng is None else rng)


def synthetic_region(
    n: int,
    rng: np.random.Generator | int | None = None,
    max_side: float = REGION_MAX_SIDE,
    dim: int = 2,
) -> RectArray:
    """``n`` uniformly distributed squares with side ``U(0, max_side]``.

    Centers are placed so every square lies entirely within the unit
    cube (the paper normalises all data sets to the unit square).
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0.0 < max_side < 1.0:
        raise ValueError("max_side must be in (0, 1)")
    rng = _resolve_rng(rng)
    sides = rng.random(n) * max_side
    half = (sides / 2.0)[:, None]
    centers = half + rng.random((n, dim)) * (1.0 - 2.0 * half)
    return RectArray(centers - half, centers + half)


def synthetic_point(
    n: int,
    rng: np.random.Generator | int | None = None,
    dim: int = 2,
) -> RectArray:
    """``n`` uniform points in the unit cube, as degenerate rectangles."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = _resolve_rng(rng)
    points = rng.random((n, dim))
    return RectArray.from_points(points)
