"""Buffer pools: LRU (the paper's policy) plus ablation alternatives."""

from __future__ import annotations

from .base import BufferPool, BufferStats, PinningError
from .lru import LRUBuffer
from .policies import POLICIES, ClockBuffer, FIFOBuffer, RandomBuffer
from .sharded import ShardedBufferPool

__all__ = [
    "BufferPool",
    "BufferStats",
    "ClockBuffer",
    "FIFOBuffer",
    "LRUBuffer",
    "PinningError",
    "POLICIES",
    "RandomBuffer",
    "ShardedBufferPool",
]
