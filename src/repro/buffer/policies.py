"""Alternative replacement policies (ablation extensions).

The paper models LRU specifically; these policies let the benchmark
harness check how sensitive its conclusions are to the replacement
policy: CLOCK is the classic one-bit LRU approximation, FIFO ignores
recency of *use*, and RANDOM is the memoryless baseline.  (For the
independent-reference pattern the model assumes, LRU, CLOCK and FIFO
behave almost identically; see ``benchmarks/test_ablation_policies.py``.)
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

import numpy as np

from .base import BufferPool, PageId
from .lru import LRUBuffer

__all__ = ["ClockBuffer", "FIFOBuffer", "RandomBuffer", "POLICIES"]


class FIFOBuffer(BufferPool):
    """First-in first-out replacement: hits do not refresh a page."""

    def __init__(self, capacity: int, pinned: Iterable[PageId] = ()) -> None:
        super().__init__(capacity, pinned)
        self._queue: OrderedDict[PageId, None] = OrderedDict()

    def _resident(self, page: PageId) -> bool:
        return page in self._queue

    def _resident_count(self) -> int:
        return len(self._queue)

    def _touch(self, page: PageId) -> None:
        pass  # FIFO ignores hits

    def _admit(self, page: PageId) -> None:
        self._queue[page] = None

    def _evict(self) -> PageId:
        victim, _ = self._queue.popitem(last=False)
        return victim


class ClockBuffer(BufferPool):
    """Second-chance (CLOCK) replacement.

    Pages sit on a circular list with a reference bit; the hand sweeps,
    clearing set bits, and evicts the first page found unreferenced.
    """

    def __init__(self, capacity: int, pinned: Iterable[PageId] = ()) -> None:
        super().__init__(capacity, pinned)
        self._pages: list[PageId] = []
        self._referenced: dict[PageId, bool] = {}
        self._hand = 0

    def _resident(self, page: PageId) -> bool:
        return page in self._referenced

    def _resident_count(self) -> int:
        return len(self._pages)

    def _touch(self, page: PageId) -> None:
        self._referenced[page] = True

    def _admit(self, page: PageId) -> None:
        # Insert at the hand so the sweep order stays circular.
        self._pages.insert(self._hand, page)
        self._referenced[page] = False
        self._hand = (self._hand + 1) % len(self._pages)

    def _evict(self) -> PageId:
        while True:
            self._hand %= len(self._pages)
            page = self._pages[self._hand]
            if self._referenced[page]:
                self._referenced[page] = False
                self._hand += 1
            else:
                self._pages.pop(self._hand)
                del self._referenced[page]
                return page


class RandomBuffer(BufferPool):
    """Uniform random replacement (memoryless baseline)."""

    def __init__(
        self,
        capacity: int,
        pinned: Iterable[PageId] = (),
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(capacity, pinned)
        self._pages: list[PageId] = []
        self._index: dict[PageId, int] = {}
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def _resident(self, page: PageId) -> bool:
        return page in self._index

    def _resident_count(self) -> int:
        return len(self._pages)

    def _touch(self, page: PageId) -> None:
        pass  # random replacement ignores recency

    def _admit(self, page: PageId) -> None:
        self._index[page] = len(self._pages)
        self._pages.append(page)

    def _evict(self) -> PageId:
        slot = int(self._rng.integers(len(self._pages)))
        victim = self._pages[slot]
        last = self._pages.pop()
        if slot < len(self._pages):
            self._pages[slot] = last
            self._index[last] = slot
        del self._index[victim]
        return victim


POLICIES = {
    "lru": LRUBuffer,
    "fifo": FIFOBuffer,
    "clock": ClockBuffer,
    "random": RandomBuffer,
}
"""Replacement policies by name."""
