"""Buffer pool abstraction.

The paper assumes exactly one R-tree node per page, so "page" here is a
node id.  A buffer pool holds up to ``capacity`` pages; requesting a
resident page is a *hit* (no disk access), requesting a non-resident
page is a *miss* that loads the page, evicting another if the pool is
full.  Pinned pages (the paper's §3.3 extension: "pins the top few
levels of the R-tree in the buffer") are preloaded, always hit, and are
never eviction candidates — but they do occupy buffer capacity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable

__all__ = ["BufferPool", "BufferStats", "PinningError"]

PageId = Hashable


class PinningError(ValueError):
    """Raised when pinned pages do not fit in the buffer."""


class BufferStats:
    """Running hit/miss counters for a buffer pool."""

    __slots__ = ("requests", "hits", "misses", "evictions")

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of requests served from the buffer (0 if no requests)."""
        return self.hits / self.requests if self.requests else 0.0

    def reset(self) -> None:
        """Zero all counters (used between measurement batches)."""
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> "BufferStats":
        """An independent copy of the current counter values."""
        copy = BufferStats()
        copy.requests = self.requests
        copy.hits = self.hits
        copy.misses = self.misses
        copy.evictions = self.evictions
        return copy

    def as_dict(self) -> dict[str, int]:
        """The counters as a JSON-ready mapping."""
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferStats(requests={self.requests}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


class BufferPool(ABC):
    """Base class implementing pinning and accounting.

    Subclasses provide the replacement policy through three hooks:
    :meth:`_touch` (called on a hit), :meth:`_admit` (called to make a
    missed page resident), and :meth:`_evict` (called to choose and
    remove a victim when the unpinned area is full).
    """

    def __init__(
        self, capacity: int, pinned: Iterable[PageId] = ()
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be at least 1 page")
        pinned_set = frozenset(pinned)
        if len(pinned_set) > capacity:
            raise PinningError(
                f"cannot pin {len(pinned_set)} pages in a {capacity}-page buffer"
            )
        self.capacity = capacity
        self.pinned = pinned_set
        self.stats = BufferStats()
        self.sink = None
        """Optional observability sink (see :mod:`repro.obs.levels`).

        Any object with ``record_hit(page)``, ``record_pin_hit(page)``
        and ``record_miss(page, evicted)`` methods; ``None`` (the
        default) keeps :meth:`request` on the uninstrumented fast
        path — a single ``is not None`` test per call.
        """

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    @property
    def unpinned_capacity(self) -> int:
        """Pages available to the replacement policy."""
        return self.capacity - len(self.pinned)

    def request(self, page: PageId) -> bool:
        """Access ``page``; returns True on a buffer hit.

        A miss loads the page (a disk access), evicting the policy's
        victim when the unpinned area is full.  When the unpinned
        capacity is zero, missed pages are read and immediately
        discarded — every unpinned access is then a disk access.
        """
        stats = self.stats
        sink = self.sink
        stats.requests += 1
        if page in self.pinned:
            stats.hits += 1
            if sink is not None:
                sink.record_pin_hit(page)
            return True
        if self._resident(page):
            stats.hits += 1
            self._touch(page)
            if sink is not None:
                sink.record_hit(page)
            return True
        stats.misses += 1
        evicted: PageId | None = None
        if self.unpinned_capacity > 0:
            if self._resident_count() >= self.unpinned_capacity:
                evicted = self._evict()
                stats.evictions += 1
            self._admit(page)
        if sink is not None:
            sink.record_miss(page, evicted)
        return False

    def is_full(self) -> bool:
        """True once the unpinned area holds its full complement of pages."""
        return self._resident_count() >= self.unpinned_capacity

    def __contains__(self, page: PageId) -> bool:
        return page in self.pinned or self._resident(page)

    def __len__(self) -> int:
        """Number of resident pages, pinned included."""
        return len(self.pinned) + self._resident_count()

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _resident(self, page: PageId) -> bool:
        """Is ``page`` in the unpinned area?"""

    @abstractmethod
    def _resident_count(self) -> int:
        """Number of pages in the unpinned area."""

    @abstractmethod
    def _touch(self, page: PageId) -> None:
        """Record a hit on a resident page."""

    @abstractmethod
    def _admit(self, page: PageId) -> None:
        """Make a missed page resident (space is guaranteed)."""

    @abstractmethod
    def _evict(self) -> PageId:
        """Choose, remove, and return a victim page."""
