"""Least-recently-used buffer replacement.

This is the policy analysed by the paper's buffer model (following
Bhide, Dan & Dias [2]) and the one its validation simulator implements:
"the least recently used node in the buffer is pushed out and the new
node put on the top of the LRU stack" (§4).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from .base import BufferPool, PageId

__all__ = ["LRUBuffer"]


class LRUBuffer(BufferPool):
    """An LRU buffer pool.

    The unpinned area is an ordered dict used as the LRU stack: most
    recently used at the end, victim popped from the front.
    """

    def __init__(self, capacity: int, pinned: Iterable[PageId] = ()) -> None:
        super().__init__(capacity, pinned)
        self._stack: OrderedDict[PageId, None] = OrderedDict()

    def _resident(self, page: PageId) -> bool:
        return page in self._stack

    def _resident_count(self) -> int:
        return len(self._stack)

    def _touch(self, page: PageId) -> None:
        self._stack.move_to_end(page)

    def _admit(self, page: PageId) -> None:
        self._stack[page] = None

    def _evict(self) -> PageId:
        victim, _ = self._stack.popitem(last=False)
        return victim

    def lru_order(self) -> list[PageId]:
        """Resident unpinned pages, least recently used first (for tests)."""
        return list(self._stack)
