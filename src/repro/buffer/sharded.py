"""A hash-partitioned, per-shard-locked buffer pool for concurrent serving.

The paper's simulator owns one buffer and one thread, so its
:class:`~repro.buffer.base.BufferPool` needs no synchronization.  A
serving engine does not have that luxury: concurrent micro-batches all
funnel into ``request()``, and a single eviction list (the LRU stack)
serializes every one of them.  :class:`ShardedBufferPool` removes the
single list: page ids are hash-partitioned across ``K`` independent
shards, each a plain single-threaded :class:`~repro.buffer.base.
BufferPool` (any registered policy) guarded by its own lock, so
requests for pages in different shards never contend.

Semantics, stated honestly:

* **K = 1 is the paper's buffer, bit-exactly.**  One shard holds the
  full capacity and every pinned page; ``request()`` adds one lock
  acquisition around the identical policy code, so a deterministic
  replay produces the identical hit/miss/eviction sequence as the
  unsharded pool — the correctness anchor back to the batch simulator
  (see ``docs/SERVING.md``).
* **K > 1 is a different replacement policy.**  A sharded LRU with
  per-shard capacity ``C/K`` is *not* equivalent to one LRU of
  capacity ``C`` (a burst of popular pages hashed into one shard can
  evict early while other shards idle).  What *is* exact is the
  decomposition: each shard behaves precisely like a single pool fed
  the subsequence of requests hashed to it, and the aggregate
  counters are precisely the shard sums — both are enforced by
  ``tests/buffer/test_sharded.py`` and by the metrics-export
  validator's sum-reconciliation invariants.

Pinned pages (§3.3) are partitioned like any other id and occupy
capacity in their home shard; a pin distribution that overflows some
shard raises :class:`~repro.buffer.base.PinningError` — the sharded
pool never silently spills pins across shards.

Under ``REPRO_SANITIZE=1`` the sanitizer registers every shard's pool
and stats with the shard's lock: touching a shard without holding its
lock raises at the exact write (see ``repro.analysis.sanitize``).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable

import numpy as np

from .base import BufferPool, BufferStats, PageId, PinningError
from .policies import POLICIES

__all__ = ["ShardedBufferPool", "build_shard_pool", "plan_shard_split"]


def plan_shard_split(
    capacity: int,
    shards: int,
    policy: str,
    pinned: Iterable[PageId],
) -> tuple[frozenset[PageId], list[int], list[list[PageId]]]:
    """Validate and split a pool configuration across ``K`` shards.

    Returns ``(pinned_set, shard_capacities, per_shard_pins)`` where
    shard ``s`` gets ``capacity // K`` pages plus one of the
    ``capacity % K`` remainder pages (lowest shards first) and the
    pins hashed to it.  This is the *single* source of the split: the
    in-process :class:`ShardedBufferPool` and the process-per-shard
    topology (``repro.serving.workers``) both build from it, so their
    per-shard pools are structurally identical by construction.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if capacity < shards:
        raise ValueError(
            f"cannot split {capacity} pages across {shards} shards "
            "(each shard needs at least one page)"
        )
    if policy not in POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; choices: {sorted(POLICIES)}"
        )
    pinned_set = frozenset(pinned)
    if len(pinned_set) > capacity:
        raise PinningError(
            f"cannot pin {len(pinned_set)} pages in a "
            f"{capacity}-page buffer"
        )
    per_shard_pins: list[list[PageId]] = [[] for _ in range(shards)]
    for page in pinned_set:
        per_shard_pins[hash(page) % shards].append(page)
    base, extra = divmod(capacity, shards)
    shard_capacities = [base + (1 if s < extra else 0) for s in range(shards)]
    for s, (shard_capacity, pins) in enumerate(
        zip(shard_capacities, per_shard_pins)
    ):
        if len(pins) > shard_capacity:
            raise PinningError(
                f"shard {s} holds {len(pins)} pinned pages but only "
                f"{shard_capacity} slots; repartition or grow the "
                "buffer"
            )
    return pinned_set, shard_capacities, per_shard_pins


def build_shard_pool(
    shard_capacity: int,
    pins: Iterable[PageId],
    policy: str,
    *,
    shard: int,
    rng: int = 0,
) -> BufferPool:
    """One shard's policy pool, seeded per shard for ``random``.

    Shard ``s`` of a ``random`` pool draws from an independent
    generator seeded ``rng + s`` — the same recipe whether the pool
    lives in this process or in a fork worker, which is what keeps the
    process topology bit-exact against :class:`ShardedBufferPool`.
    """
    if policy == "random":
        return POLICIES["random"](
            shard_capacity,
            pins,
            rng=np.random.default_rng(int(rng) + shard),
        )
    return POLICIES[policy](shard_capacity, pins)


class ShardedBufferPool:
    """``K`` independent replacement domains behind one ``request()``.

    Parameters
    ----------
    capacity:
        Total buffer capacity in pages, split as evenly as possible:
        shard ``s`` gets ``capacity // K`` pages plus one of the
        ``capacity % K`` remainder pages (lowest shards first).
    shards:
        Number of partitions ``K`` (>= 1).
    policy:
        Replacement policy per shard (``lru``, ``fifo``, ``clock``,
        ``random``) — every shard runs the same policy.
    pinned:
        Page ids preloaded and excluded from replacement, partitioned
        to their home shards.
    rng:
        Seed for the ``random`` policy; shard ``s`` draws from an
        independent generator seeded ``rng + s`` (other policies
        ignore it).
    """

    def __init__(
        self,
        capacity: int,
        shards: int = 1,
        *,
        policy: str = "lru",
        pinned: Iterable[PageId] = (),
        rng: int = 0,
    ) -> None:
        pinned_set, shard_capacities, per_shard_pinned = plan_shard_split(
            capacity, shards, policy, pinned
        )
        self.capacity = int(capacity)
        self.n_shards = int(shards)
        self.policy = policy
        self.pinned = pinned_set
        self._pools: tuple[BufferPool, ...] = tuple(
            build_shard_pool(
                shard_capacity, pins, policy, shard=s, rng=rng
            )
            for s, (shard_capacity, pins) in enumerate(
                zip(shard_capacities, per_shard_pinned)
            )
        )
        self._locks: tuple[threading.Lock, ...] = tuple(
            threading.Lock() for _ in range(shards)
        )

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def shard_of(self, page: PageId) -> int:
        """The home shard of ``page`` (stable hash partition)."""
        return hash(page) % self.n_shards

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def request(self, page: PageId) -> bool:
        """Access ``page`` through its home shard; True on a hit.

        Exactly :meth:`repro.buffer.base.BufferPool.request` semantics
        within the shard, under the shard's lock — requests to
        different shards proceed concurrently.
        """
        shard = hash(page) % self.n_shards
        with self._locks[shard]:
            return self._pools[shard].request(page)

    def request_batch(self, pages) -> int:
        """Access every page in ``pages`` in order; returns the hit count.

        Equivalent to ``sum(self.request(int(p)) for p in pages)`` —
        the serving engine's one-call-per-micro-batch entry point, and
        the exact stream the process-per-shard topology reproduces:
        within a batch, each shard sees the subsequence of ``pages``
        hashed to it, in stream order, which is all any per-shard
        policy pool's state depends on.
        """
        hits = 0
        request = self.request
        for page in pages:
            if request(int(page)):
                hits += 1
        return hits

    # ------------------------------------------------------------------
    # Accounting — the sum-reconciliation surface
    # ------------------------------------------------------------------
    def shard_stats(self) -> tuple[BufferStats, ...]:
        """Independent per-shard counter snapshots (taken under locks)."""
        snapshots = []
        for lock, pool in zip(self._locks, self._pools):
            with lock:
                snapshots.append(pool.stats.snapshot())
        return tuple(snapshots)

    def aggregate_stats(self) -> BufferStats:
        """Counters summed over shards — the single-pool view.

        The obs-layer invariant this must satisfy: every field equals
        the sum of the same field over :meth:`shard_stats`, and
        ``hits + misses == requests`` (each shard satisfies it, so the
        sum does).
        """
        totals = BufferStats()
        for snapshot in self.shard_stats():
            totals.requests += snapshot.requests
            totals.hits += snapshot.hits
            totals.misses += snapshot.misses
            totals.evictions += snapshot.evictions
        return totals

    def reset_stats(self) -> None:
        """Zero every shard's counters (under each shard's lock)."""
        for lock, pool in zip(self._locks, self._pools):
            with lock:
                pool.stats.reset()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def unpinned_capacity(self) -> int:
        """Pages available to replacement, summed over shards."""
        return self.capacity - len(self.pinned)

    def shard_capacities(self) -> tuple[int, ...]:
        """Each shard's total capacity (sums to ``capacity``)."""
        return tuple(pool.capacity for pool in self._pools)

    def is_full(self) -> bool:
        """True once every shard's unpinned area is full."""
        for lock, pool in zip(self._locks, self._pools):
            with lock:
                if not pool.is_full():
                    return False
        return True

    def __contains__(self, page: PageId) -> bool:
        shard = hash(page) % self.n_shards
        with self._locks[shard]:
            return page in self._pools[shard]

    def __len__(self) -> int:
        """Resident pages over all shards, pinned included."""
        total = 0
        for lock, pool in zip(self._locks, self._pools):
            with lock:
                total += len(pool)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedBufferPool(capacity={self.capacity}, "
            f"shards={self.n_shards}, policy={self.policy!r})"
        )
