#!/usr/bin/env python3
"""Shard-count sweep: hit-ratio fidelity vs the paper's single-LRU model.

The paper's Eq. 5/6 buffer model (and its Figure 6 ED curves) assume
**one** LRU buffer of ``B`` pages.  The serving engine hash-partitions
that capacity over K shards (``docs/SERVING.md``), and PR 10's process
topology makes K the degree of multi-core parallelism — so the
operative question became: *how much model fidelity does each extra
shard cost?*

This tool answers it with data.  For each K in 1..``--max-shards`` it
replays one experiment's serving probe (same tree, workload, buffer
and seeded arrival schedule every time), captures the run's
``repro-telemetry/1`` stream, and reads the *final cumulative tick* —
the shard-reconciled counters the stream validator guarantees — to
chart, per K:

* the aggregate hit ratio against the Eq. 5/6 single-LRU prediction
  carried in each stream's header (the paper's §4 bar is 2% absolute);
* the per-shard spread (max - min shard hit ratio): hash partitioning
  splits the hot set unevenly, and the spread is the price paid;
* measured disk accesses per query vs the model's ED.

Buffer counters are deterministic (seeded arrivals, deterministic
stabs), so the report is byte-stable per configuration — the committed
example at ``docs/examples/shard_sweep_fig6.txt`` regenerates
verbatim.  Only tick *timing* varies run to run, and the report never
reads it.

Usage::

    python tools/shard_sweep.py fig6
    python tools/shard_sweep.py fig9 --max-shards 8 --queries 2000
    python tools/shard_sweep.py fig6 --process-workers   # K fork workers
    python tools/shard_sweep.py fig6 --report docs/examples/shard_sweep_fig6.txt

``--process-workers`` serves each K through K fork worker processes
(:class:`repro.serving.ProcessShardedBufferPool`); counters are
bit-identical to the in-process pool, so the fidelity chart is the
same — the flag exists to prove exactly that on real streams.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python tools/shard_sweep.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.probes import SERVE_PROBES, run_serve_probe
from repro.obs.telemetry import read_telemetry
from repro.simulation.shard import fork_available

__all__ = ["main", "render", "sweep"]

#: The paper's model-vs-measurement validation bar (§4), shared with
#: ``tools/serve_report.py``: within 2% absolute of Eq. 5/6 is "good".
CONVERGENCE_BAND = 0.02


def sweep(
    experiment: str,
    max_shards: int,
    out_dir: str,
    *,
    queries: int | None = None,
    process_workers: bool = False,
) -> list[dict]:
    """Run the probe at each K, returning one summary row per K.

    Each run writes ``shards-K.jsonl`` under ``out_dir``; rows are
    derived exclusively from the re-validated stream (header model
    block + final tick cumulative section), never from in-process
    state — the tool consumes the telemetry contract, nothing more.
    """
    spec = SERVE_PROBES[experiment]
    if queries is not None:
        import dataclasses

        spec = dataclasses.replace(spec, n_queries=queries)
    rows: list[dict] = []
    for shards in range(1, max_shards + 1):
        path = os.path.join(out_dir, f"shards-{shards}.jsonl")
        env_key = "REPRO_SERVE_WORKERS"
        saved = os.environ.get(env_key)
        try:
            if process_workers:
                # The worker count *is* the shard count in the process
                # topology; the probe reads it from the environment.
                os.environ[env_key] = str(shards)
            else:
                os.environ.pop(env_key, None)
            run_serve_probe(spec, shards=shards, telemetry_out=path)
        finally:
            if saved is None:
                os.environ.pop(env_key, None)
            else:
                os.environ[env_key] = saved
        header, ticks = read_telemetry(path)
        final = ticks[-1]["cumulative"]
        agg = final["aggregate"]
        per_shard = [
            row["hits"] / row["requests"] if row["requests"] else None
            for row in final["shards"]
        ]
        known = [r for r in per_shard if r is not None]
        n_queries = header["config"]["n_queries"]
        rows.append(
            {
                "shards": shards,
                "worker_processes": header["config"]["worker_processes"],
                "model_hit_ratio": header["model"]["hit_ratio"],
                "model_ed": header["model"]["disk_accesses"],
                "hit_ratio": agg["hits"] / agg["requests"],
                "ed_per_query": agg["misses"] / n_queries,
                "shard_min": min(known),
                "shard_max": max(known),
                "requests": agg["requests"],
            }
        )
    return rows


def _bar(ratio: float, width: int, marker: float) -> str:
    """Hit-ratio gauge with the model prediction as a ``|`` marker."""
    cells = [" "] * width
    for i in range(min(width, int(round(ratio * width)))):
        cells[i] = "#"
    pos = min(width - 1, max(0, int(round(marker * width)) - 1))
    cells[pos] = "|"
    return "".join(cells)


def render(experiment: str, rows: list[dict], width: int = 24) -> str:
    """The fidelity chart for one sweep."""
    lines: list[str] = []
    model_hr = rows[0]["model_hit_ratio"]
    model_ed = rows[0]["model_ed"]
    topology = (
        "process-per-shard fork workers"
        if rows[0]["worker_processes"]
        else "in-process sharded pool"
    )
    lines.append(f"shard-count sweep: {experiment} ({topology})")
    lines.append("=" * 66)
    lines.append(
        f"single-LRU model (Eq. 5/6): hit ratio {model_hr:.4f}, "
        f"ED {model_ed:.3f} accesses/query"
    )
    lines.append(
        f"fidelity band: +/-{CONVERGENCE_BAND:.0%} absolute (paper §4)"
    )
    lines.append("")
    lines.append(
        f"  K  {'hit ratio':>9}  {'':{width}}  {'Δ model':>8}  "
        f"{'spread':>7}  {'ED/query':>8}"
    )
    worst_dev = 0.0
    worst_spread = 0.0
    for row in rows:
        dev = row["hit_ratio"] - model_hr
        spread = row["shard_max"] - row["shard_min"]
        worst_dev = max(worst_dev, abs(dev))
        worst_spread = max(worst_spread, spread)
        flag = "" if abs(dev) <= CONVERGENCE_BAND else "  OUT OF BAND"
        lines.append(
            f"{row['shards']:>3}  {row['hit_ratio']:>9.4f}  "
            f"{_bar(row['hit_ratio'], width, model_hr)}  "
            f"{dev:>+8.4f}  {spread:>7.4f}  "
            f"{row['ed_per_query']:>8.3f}{flag}"
        )
    lines.append("")
    verdict = (
        "within the band at every K"
        if worst_dev <= CONVERGENCE_BAND
        else "exceeds the band at some K"
    )
    lines.append(
        f"aggregate fidelity: worst |Δ| {worst_dev:.4f} vs model — "
        f"{verdict}"
    )
    lines.append(
        f"partitioning price: worst per-shard spread {worst_spread:.4f} "
        f"(hash split of the hot set)"
    )
    lines.append(
        f"counters: {rows[0]['requests']} node accesses per run, "
        f"identical stream-validated totals at every K"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="shard_sweep",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="fig6",
        choices=sorted(SERVE_PROBES),
        help="which experiment's serving probe to sweep (default: fig6)",
    )
    parser.add_argument(
        "--max-shards", type=int, default=16, metavar="K",
        help="sweep K = 1..K (default: 16)",
    )
    parser.add_argument(
        "--queries", type=int, default=None, metavar="N",
        help="override the probe's query count (default: the spec's)",
    )
    parser.add_argument(
        "--process-workers", action="store_true",
        help="serve each K through K fork worker processes",
    )
    parser.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="keep the per-K telemetry streams here (default: temp dir)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the chart to PATH",
    )
    parser.add_argument(
        "--width", type=int, default=24,
        help="hit-ratio bar width (default: 24)",
    )
    args = parser.parse_args(argv)
    if args.max_shards < 1:
        parser.error("--max-shards must be >= 1")
    if args.process_workers and not fork_available():
        print("process workers need the fork start method", file=sys.stderr)
        return 1

    if args.telemetry_dir is not None:
        os.makedirs(args.telemetry_dir, exist_ok=True)
        rows = sweep(
            args.experiment, args.max_shards, args.telemetry_dir,
            queries=args.queries, process_workers=args.process_workers,
        )
    else:
        with tempfile.TemporaryDirectory() as tmp:
            rows = sweep(
                args.experiment, args.max_shards, tmp,
                queries=args.queries,
                process_workers=args.process_workers,
            )
    text = render(args.experiment, rows, width=args.width)
    print(text)
    if args.report is not None:
        Path(args.report).write_text(text + "\n")
        print(f"[report written to {args.report}]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
