#!/usr/bin/env python3
"""Time the whole-program analysis pass; gate it under a wall budget.

The whole-program rules (RL008-RL012) parse every source file once,
build the project graph, and then run all twelve rules.  That pass
runs on every PR and inside the tier-1 test suite, so it has a hard
latency budget: **the full `src` scan must stay under 10 seconds**
(default; ``--budget`` overrides).  This tool measures it, fails loudly
when the budget is blown, and can record the measurement in the
``BENCH_history.jsonl`` ledger in the same ``repro-bench/1`` schema the
kernel benchmarks use::

    python tools/bench_analysis.py                        # measure + gate
    python tools/bench_analysis.py --append --note "PR 6" # also record
    python tools/bench_analysis.py --budget 5.0           # tighter gate

Ledger-record shape: ``kernel`` is ``reprolint_wholeprogram``,
``seconds`` the best-of-``--repeat`` wall time, ``ops_per_s`` the file
throughput, ``dense_seconds`` the budget, and ``speedup_vs_dense`` the
headroom factor (budget / measured) -- a value sliding toward 1.0 means
the analyzer is eating its budget.  Analysis entries share the ledger
but never match kernel-benchmark records (different ``kernel`` key), so
the existing regression gate is unaffected.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python tools/bench_analysis.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.config import load_config
from repro.analysis.core import run_analysis
from repro.obs.history import append_entry, history_entry

__all__ = ["main", "measure"]

KERNEL = "reprolint_wholeprogram"
DEFAULT_BUDGET_SECONDS = 10.0


def measure(repeat: int = 2) -> dict:
    """Run the full analysis ``repeat`` times; return the measurement.

    Best-of-N wall time: the gate cares about what the analyzer *can*
    do, and the first iteration absorbs one-off import costs.
    """
    config = load_config(REPO_ROOT / "pyproject.toml")
    timings: list[float] = []
    violations: list = []
    n_files = 0
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        violations, n_files = run_analysis(
            [REPO_ROOT / "src"], config, root=REPO_ROOT
        )
        timings.append(time.perf_counter() - start)
    return {
        "seconds": min(timings),
        "all_timings": timings,
        "n_files": n_files,
        "n_findings": len(violations),
    }


def build_report(measurement: dict, budget: float, seed: int = 0) -> dict:
    """A ``repro-bench/1`` report for one analysis timing."""
    seconds = measurement["seconds"]
    return {
        "schema": "repro-bench/1",
        "seed": seed,
        "smoke": False,
        "records": [
            {
                "kernel": KERNEL,
                "n_rects": int(measurement["n_files"]),
                "n_points": 0,
                "seconds": seconds,
                "ops_per_s": measurement["n_files"] / seconds
                if seconds > 0
                else 0.0,
                "unit": "files/s",
                "dense_seconds": budget,
                "speedup_vs_dense": budget / seconds
                if seconds > 0
                else 0.0,
            }
        ],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=DEFAULT_BUDGET_SECONDS,
        help=f"max allowed seconds (default: {DEFAULT_BUDGET_SECONDS})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="timing iterations; best-of is gated (default: 2)",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="record the measurement in the ledger",
    )
    parser.add_argument(
        "--note", default="", help="ledger note (with --append)"
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "BENCH_history.jsonl",
        help="ledger path (default: BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="also write the repro-bench/1 report to this path",
    )
    args = parser.parse_args(argv)

    measurement = measure(repeat=args.repeat)
    report = build_report(measurement, args.budget)
    record = report["records"][0]
    print(
        f"{KERNEL}: {measurement['seconds']:.3f}s best of "
        f"{args.repeat} (all: "
        f"{', '.join(f'{t:.3f}s' for t in measurement['all_timings'])}) "
        f"over {measurement['n_files']} files "
        f"({record['ops_per_s']:.0f} files/s, "
        f"{measurement['n_findings']} finding(s))"
    )

    if args.out is not None:
        args.out.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}")

    if args.append:
        recorded_at = (
            datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds")
        )
        entry = history_entry(
            report, recorded_at=recorded_at, note=args.note
        )
        append_entry(args.history, entry)
        print(f"appended run {entry['run_id']} to {args.history}")

    if measurement["seconds"] > args.budget:
        print(
            f"FAIL: whole-program analysis took "
            f"{measurement['seconds']:.3f}s, budget is {args.budget:.1f}s",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {measurement['seconds']:.3f}s <= {args.budget:.1f}s budget "
        f"({record['speedup_vs_dense']:.1f}x headroom)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
