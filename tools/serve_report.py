#!/usr/bin/env python3
"""Render a ``repro-telemetry/1`` JSONL stream as a terminal report.

The stream (written by ``repro-experiments --serve --telemetry-out``
or any :class:`repro.obs.TelemetrySink`) is a header line plus one
line per sampling tick.  This tool turns it into the three views the
paper's claims need:

* **Hit-ratio convergence** — the windowed hit ratio per tick, drawn
  against the Eq. 5/6 model-predicted steady-state ratio carried in
  the header, with the first tick inside the paper's 2% validation
  band called out.  A terminal aggregate can *equal* the prediction
  by luck; the timeline shows the LRU actually converging to it.
* **Per-shard imbalance** — final cumulative requests and hit ratio
  per shard.  Hash partitioning trades fidelity for contention
  (``docs/SERVING.md``); the spread quantifies the price this run
  paid.
* **SLO burn** — the monitor's final error-budget accounting: bad
  ticks, cumulative and windowed burn rates.

Usage::

    python tools/serve_report.py telemetry-fig6.jsonl
    python tools/serve_report.py --width 40 telemetry.jsonl

The stream is fully re-validated on load (sequence numbers, shard-sum
reconciliation, window sums — see ``repro.obs.telemetry``); a stream
that fails validation exits 1, because CI uploads this report as the
artifact of record for the serving smoke run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python tools/serve_report.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.telemetry import read_telemetry

__all__ = ["main", "render"]

#: The paper's model-vs-simulation validation bar (§4): a run is
#: "converged" once its windowed hit ratio is within 2% (absolute) of
#: the Eq. 5/6 prediction.
CONVERGENCE_BAND = 0.02


def _bar(ratio: float | None, width: int, marker: float | None) -> str:
    """An ASCII gauge for one tick's hit ratio, 0..1 across ``width``.

    ``marker`` (the model prediction) renders as ``|`` at its
    position, on top of the fill — so convergence is visible as the
    fill edge meeting the marker.
    """
    cells = [" "] * width
    if ratio is not None:
        filled = min(width, int(round(ratio * width)))
        for i in range(filled):
            cells[i] = "#"
    if marker is not None:
        pos = min(width - 1, max(0, int(round(marker * width)) - 1))
        cells[pos] = "|"
    return "".join(cells)


def _fmt_ratio(ratio: float | None) -> str:
    return "   -  " if ratio is None else f"{ratio:6.4f}"


def _fmt_us(value: float | None) -> str:
    return "      -" if value is None else f"{value:9.0f}"


def render(header: dict, ticks: list[dict], width: int = 30) -> str:
    """The full terminal report for one validated stream."""
    lines: list[str] = []
    model = header.get("model") or {}
    predicted = model.get("hit_ratio")
    config = header.get("config", {})

    lines.append("serving telemetry report")
    lines.append("=" * 60)
    described = ", ".join(
        f"{key}={config[key]}"
        for key in ("dataset", "workload", "buffer_size", "rate_qps")
        if key in config
    )
    if described:
        lines.append(f"config: {described}")
    lines.append(
        f"shards: {header['shards']}  capacity: {header['capacity']} "
        f"pages  policy: {header['policy']}  "
        f"interval: {header['interval_s'] * 1000:.0f} ms  "
        f"window: {header['window']} ticks  ticks: {len(ticks)}"
    )
    if predicted is not None:
        lines.append(
            f"model (Eq. 5/6) predicted steady-state hit ratio: "
            f"{predicted:.4f}"
        )
    lines.append("")

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------
    lines.append(
        f"{'tick':>4}  {'t(s)':>7}  {'queue':>5}  {'qry':>6}  "
        f"{'occ':>6}  {'hit':>6}  {'p99(us)':>9}  hit ratio "
        f"(| = model)"
    )
    lines.append("-" * (62 + width))
    for tick in ticks:
        window = tick["window"]
        latency = tick.get("latency_us")
        occupancy = tick.get("batch_occupancy")
        lines.append(
            f"{tick['seq']:>4}  {tick['elapsed_s']:>7.2f}  "
            f"{tick['queue_depth']:>5}  {tick['queries']:>6}  "
            f"{'-' if occupancy is None else format(occupancy, '6.0f')}  "
            f"{_fmt_ratio(window['hit_ratio'])}  "
            f"{_fmt_us(latency['p99'] if latency else None)}  "
            f"[{_bar(window['hit_ratio'], width, predicted)}]"
            f"{'  (rebased)' if tick.get('rebased') else ''}"
        )
    lines.append("")

    # ------------------------------------------------------------------
    # Convergence vs the Eq. 5/6 prediction
    # ------------------------------------------------------------------
    if predicted is not None:
        converged_at = None
        for tick in ticks:
            ratio = tick["window"]["hit_ratio"]
            if ratio is not None and abs(ratio - predicted) <= CONVERGENCE_BAND:
                converged_at = tick
                break
        final_ratio = next(
            (
                tick["window"]["hit_ratio"]
                for tick in reversed(ticks)
                if tick["window"]["hit_ratio"] is not None
            ),
            None,
        )
        lines.append("convergence vs model (paper's 2% band):")
        if converged_at is not None:
            lines.append(
                f"  first tick within ±{CONVERGENCE_BAND:.0%}: "
                f"tick {converged_at['seq']} "
                f"(t={converged_at['elapsed_s']:.2f}s, "
                f"ratio {converged_at['window']['hit_ratio']:.4f})"
            )
        else:
            lines.append(
                f"  never entered the ±{CONVERGENCE_BAND:.0%} band"
            )
        if final_ratio is not None:
            lines.append(
                f"  final windowed ratio {final_ratio:.4f}  "
                f"(Δ vs model {final_ratio - predicted:+.4f})"
            )
        lines.append("")

    # ------------------------------------------------------------------
    # Per-shard imbalance (final cumulative counters)
    # ------------------------------------------------------------------
    final = ticks[-1]["cumulative"] if ticks else None
    if final is not None:
        lines.append("per-shard totals (final tick):")
        lines.append(
            f"  {'shard':>5}  {'capacity':>8}  {'requests':>9}  "
            f"{'hits':>9}  {'evictions':>9}  {'hit ratio':>9}"
        )
        ratios = []
        total_requests = max(1, final["aggregate"]["requests"])
        capacities = header.get("shard_capacities", [])
        for row in final["shards"]:
            ratio = (
                row["hits"] / row["requests"] if row["requests"] else None
            )
            if ratio is not None:
                ratios.append(ratio)
            capacity = (
                capacities[row["shard_id"]]
                if row["shard_id"] < len(capacities)
                else "-"
            )
            lines.append(
                f"  {row['shard_id']:>5}  {capacity:>8}  "
                f"{row['requests']:>9}  {row['hits']:>9}  "
                f"{row['evictions']:>9}  {_fmt_ratio(ratio):>9}"
            )
        if len(ratios) > 1:
            shares = [
                row["requests"] / total_requests for row in final["shards"]
            ]
            lines.append(
                f"  hit-ratio spread: {max(ratios) - min(ratios):.4f}  "
                f"request share: {min(shares):.2%}..{max(shares):.2%} "
                f"(even would be {1 / len(final['shards']):.2%})"
            )
        lines.append("")

    # ------------------------------------------------------------------
    # SLO burn
    # ------------------------------------------------------------------
    slo_header = header.get("slo")
    last_slo = next(
        (tick["slo"] for tick in reversed(ticks) if tick.get("slo")), None
    )
    if slo_header is not None and last_slo is not None:
        lines.append("SLO burn:")
        targets = []
        if slo_header.get("p99_target_us") is not None:
            targets.append(f"p99 <= {slo_header['p99_target_us']:.0f} us")
        if slo_header.get("hit_ratio_floor") is not None:
            targets.append(
                f"hit ratio >= {slo_header['hit_ratio_floor']:.3f}"
            )
        lines.append(
            f"  targets: {', '.join(targets)}  "
            f"(budget {slo_header['budget']:.1%} of ticks)"
        )
        lines.append(
            f"  counted ticks: {last_slo['ticks']}  bad: "
            f"{last_slo['bad_ticks']}  burn rate: "
            f"{last_slo['burn_rate']:.2f}x  window burn: "
            f"{last_slo['window_burn_rate']:.2f}x  "
            f"{'BUDGET EXHAUSTED' if last_slo['budget_exhausted'] else 'within budget'}"
        )
        # Multiwindow alerting (fast + slow burn) — absent from streams
        # written before the multiwindow monitor landed.
        if "alerting" in last_slo:
            fast = slo_header.get("fast_window")
            slow = slo_header.get("slow_window")
            lines.append(
                f"  fast burn ({fast} ticks): "
                f"{last_slo['fast_burn_rate']:.2f}x  "
                f"slow burn ({slow} ticks): "
                f"{last_slo['slow_burn_rate']:.2f}x  "
                f"{'ALERTING (both windows burning)' if last_slo['alerting'] else 'not alerting'}"
            )
        lines.append("")

    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("stream", help="a repro-telemetry/1 JSONL file")
    parser.add_argument(
        "--width",
        type=int,
        default=30,
        help="hit-ratio bar width in characters (default 30)",
    )
    args = parser.parse_args(argv)
    try:
        header, ticks = read_telemetry(args.stream)
    except (OSError, ValueError) as exc:
        print(f"invalid telemetry stream: {exc}", file=sys.stderr)
        return 1
    if not ticks:
        print("telemetry stream has a header but no ticks", file=sys.stderr)
        return 1
    print(render(header, ticks, width=args.width))
    return 0


if __name__ == "__main__":
    sys.exit(main())
