"""Fail on broken relative links in README.md and docs/*.md.

Scans markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``), ignores absolute URLs
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors
(``#section``), and checks that every remaining target resolves to an
existing file or directory relative to the file containing the link.
Anchors on relative links (``MODEL.md#eq-5``) are checked for file
existence only.

Usage::

    python tools/check_docs_links.py            # check the default set
    python tools/check_docs_links.py FILE...    # check specific files

Exit code 0 when every link resolves; 1 otherwise, with one
``file:line: broken link -> target`` line per failure.  The same check
runs in the test suite (``tests/test_docs_links.py``) and in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["DEFAULT_FILES", "broken_links", "find_links", "main"]

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FILES = ("README.md", "docs")
"""Targets checked when no arguments are given (files or directories)."""

# Inline markdown links/images: [text](target) or ![alt](target).
# The target group stops at whitespace, ')' or '"' so that titles
# ([x](y "title")) and sized images don't leak into the path.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s\"<>]+)>?[^)]*\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def find_links(path: Path) -> list[tuple[int, str]]:
    """Return ``(line_number, target)`` for every inline link in *path*.

    Fenced code blocks are skipped: shell examples routinely contain
    ``[text](...)``-shaped strings that are not links.
    """
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


def broken_links(path: Path) -> list[tuple[int, str]]:
    """Return the links in *path* whose targets do not resolve."""
    broken: list[tuple[int, str]] = []
    for lineno, target in find_links(path):
        if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append((lineno, target))
    return broken


def _collect(arguments: list[str]) -> list[Path]:
    targets = arguments or list(DEFAULT_FILES)
    files: list[Path] = []
    for argument in targets:
        candidate = Path(argument)
        if not candidate.is_absolute():
            candidate = REPO_ROOT / candidate
        if candidate.is_dir():
            files.extend(sorted(candidate.glob("*.md")))
        else:
            files.append(candidate)
    return files


def _display(path: Path) -> Path:
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def main(argv: list[str] | None = None) -> int:
    failures = 0
    checked = 0
    for path in _collect(list(sys.argv[1:] if argv is None else argv)):
        if not path.exists():
            print(f"{path}: file not found")
            failures += 1
            continue
        checked += 1
        for lineno, target in broken_links(path):
            print(f"{_display(path)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"docs links OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
