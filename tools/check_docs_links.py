"""Fail on broken relative links and anchors in README.md and docs/*.md.

Scans markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``), ignores absolute URLs
(``http://``, ``https://``, ``mailto:``), and checks that every
remaining target resolves to an existing file or directory relative to
the file containing the link.  Anchor fragments are validated against
the target's headings, GitHub-slugified: a pure in-page anchor
(``#span-schema``) must name a heading of the containing file, and an
anchor on a relative markdown link (``MODEL.md#eq-5``) must name a
heading of the linked file.  Anchors on non-markdown targets are
ignored (only the file must exist).

Usage::

    python tools/check_docs_links.py            # check the default set
    python tools/check_docs_links.py FILE...    # check specific files

Exit code 0 when every link resolves; 1 otherwise, with one
``file:line: broken link -> target`` line per failure.  The same check
runs in the test suite (``tests/test_docs_links.py``) and in CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = [
    "DEFAULT_FILES",
    "broken_links",
    "find_links",
    "heading_slugs",
    "main",
    "slugify",
]

REPO_ROOT = Path(__file__).resolve().parent.parent

DEFAULT_FILES = ("README.md", "docs")
"""Targets checked when no arguments are given (files or directories)."""

# Inline markdown links/images: [text](target) or ![alt](target).
# The target group stops at whitespace, ')' or '"' so that titles
# ([x](y "title")) and sized images don't leak into the path.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s\"<>]+)>?[^)]*\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def find_links(path: Path) -> list[tuple[int, str]]:
    """Return ``(line_number, target)`` for every inline link in *path*.

    Fenced code blocks are skipped: shell examples routinely contain
    ``[text](...)``-shaped strings that are not links.
    """
    links: list[tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
    return links


_SLUG_STRIP_RE = re.compile(r"[^\w\- ]")

_HEADING_RE = re.compile(r"^#{1,6} +(.+?)\s*$")


def slugify(heading: str) -> str:
    """A heading's GitHub anchor slug.

    Mirrors GitHub's rendering: inline-code backticks and markdown
    emphasis are dropped with the rest of the punctuation, the text is
    lowercased, and spaces become hyphens.
    """
    text = _SLUG_STRIP_RE.sub("", heading.strip().lower())
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> frozenset[str]:
    """Every anchor slug *path*'s headings define (fences skipped).

    Duplicate headings get ``-1``, ``-2``, ... suffixes, as on GitHub,
    so repeated section names stay individually addressable.
    """
    counts: dict[str, int] = {}
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match is None:
            continue
        base = slugify(match.group(1))
        seen = counts.get(base, 0)
        counts[base] = seen + 1
        slugs.add(base if seen == 0 else f"{base}-{seen}")
    return frozenset(slugs)


def broken_links(path: Path) -> list[tuple[int, str]]:
    """Return the links in *path* whose targets or anchors don't resolve."""
    broken: list[tuple[int, str]] = []
    for lineno, target in find_links(path):
        if target.startswith(_SKIP_PREFIXES):
            continue
        relative, _, anchor = target.partition("#")
        if relative and not (path.parent / relative).exists():
            broken.append((lineno, target))
            continue
        if not anchor:
            continue
        destination = (path.parent / relative) if relative else path
        if destination.suffix.lower() not in (".md", ".markdown"):
            continue
        if anchor.lower() not in heading_slugs(destination):
            broken.append((lineno, target))
    return broken


def _collect(arguments: list[str]) -> list[Path]:
    targets = arguments or list(DEFAULT_FILES)
    files: list[Path] = []
    for argument in targets:
        candidate = Path(argument)
        if not candidate.is_absolute():
            candidate = REPO_ROOT / candidate
        if candidate.is_dir():
            files.extend(sorted(candidate.glob("*.md")))
        else:
            files.append(candidate)
    return files


def _display(path: Path) -> Path:
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


def main(argv: list[str] | None = None) -> int:
    failures = 0
    checked = 0
    for path in _collect(list(sys.argv[1:] if argv is None else argv)):
        if not path.exists():
            print(f"{path}: file not found")
            failures += 1
            continue
        checked += 1
        for lineno, target in broken_links(path):
            print(f"{_display(path)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"docs links OK ({checked} file(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
