#!/usr/bin/env python3
"""Benchmark-history ledger tool: append runs, gate against regressions.

``BENCH_repro.json`` (written by ``benchmarks/bench_kernels.py``) is a
single snapshot.  This tool maintains ``BENCH_history.jsonl`` — an
append-only JSON-Lines ledger of successive runs — and gates the
latest snapshot against a baseline entry with per-metric noise
tolerances (see :mod:`repro.obs.history` for the comparison rules).

Usage::

    python tools/bench_history.py check                 # gate, exit 1 on regression
    python tools/bench_history.py --check               # same (flag spelling)
    python tools/bench_history.py append --note "PR 5"  # record a run
    python tools/bench_history.py list                  # show the ledger

``check`` compares ``--report`` (default ``BENCH_repro.json``) against
the most recent *comparable* ledger entry — same smoke flag, at least
one matching (kernel, sizes) record — or the one named by
``--baseline RUN_ID``.  A first run with no comparable baseline passes.
Tolerances can be loosened per metric with ``--tolerance seconds=2.0``
(repeatable); CI uses wider factors than local runs to absorb shared-
runner variance.

In CI the gate runs **before** the smoke report is appended, so a run
is always compared against history, never against itself.
"""

from __future__ import annotations

import argparse
import datetime
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python tools/bench_history.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.history import (
    DEFAULT_TOLERANCES,
    append_entry,
    compare_reports,
    find_baseline,
    history_entry,
    load_history,
    validate_bench_report,
)

__all__ = ["main"]


def _load_report(path: Path) -> dict:
    """Read and schema-validate a bench report, or exit with a message."""
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"{path}: unreadable report: {exc}")
    errors = validate_bench_report(report)
    if errors:
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        raise SystemExit(1)
    return report


def _load_entries(path: Path) -> list[dict]:
    if not path.exists():
        return []
    try:
        return load_history(path)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _parse_tolerances(pairs: list[str]) -> dict[str, float]:
    tolerances: dict[str, float] = {}
    for pair in pairs:
        metric, sep, factor = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"--tolerance wants METRIC=FACTOR, got {pair!r} "
                f"(metrics: {', '.join(sorted(DEFAULT_TOLERANCES))})"
            )
        try:
            tolerances[metric] = float(factor)
        except ValueError:
            raise SystemExit(f"--tolerance {pair!r}: not a number: {factor!r}")
    return tolerances


def _cmd_check(args: argparse.Namespace) -> int:
    report = _load_report(args.report)
    entries = _load_entries(args.history)
    try:
        baseline = find_baseline(
            entries, report, baseline_run_id=args.baseline
        )
        if baseline is None:
            print(
                f"{args.report}: no comparable baseline in {args.history} "
                f"(smoke={report['smoke']}) — first run passes"
            )
            return 0
        comparison = compare_reports(
            baseline, report, tolerances=_parse_tolerances(args.tolerance)
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"baseline: run {comparison.baseline_run_id}"
          + (f" ({baseline.get('note')})" if baseline.get("note") else ""))
    for delta in comparison.deltas:
        print(f"  {delta.describe()}")
    for name in comparison.skipped:
        print(f"  {name}: only in one report, skipped")
    if not comparison.ok:
        print(
            f"FAIL: {len(comparison.regressions)} metric(s) regressed "
            f"beyond tolerance",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {len(comparison.deltas)} metric comparison(s) within "
          f"tolerance")
    return 0


def _cmd_append(args: argparse.Namespace) -> int:
    report = _load_report(args.report)
    recorded_at = args.recorded_at or (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )
    entry = history_entry(
        report,
        run_id=args.run_id,
        recorded_at=recorded_at,
        note=args.note,
    )
    duplicate = any(
        e.get("run_id") == entry["run_id"] for e in _load_entries(args.history)
    )
    if duplicate and not args.allow_duplicate:
        print(
            f"{args.history}: run {entry['run_id']} already recorded "
            f"(identical records hash identically; use --allow-duplicate "
            f"to append anyway)"
        )
        return 0
    append_entry(args.history, entry)
    print(
        f"appended run {entry['run_id']} "
        f"({len(entry['records'])} record(s), smoke={entry['smoke']}) "
        f"to {args.history}"
    )
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    entries = _load_entries(args.history)
    if not entries:
        print(f"{args.history}: no entries")
        return 0
    for entry in entries:
        kernels = ", ".join(
            f"{r['kernel']}={r['seconds']:.4g}s" for r in entry["records"]
        )
        flavour = "smoke" if entry["smoke"] else "full"
        note = f"  # {entry['note']}" if entry.get("note") else ""
        print(
            f"{entry['run_id']}  {entry.get('recorded_at') or '-':25s} "
            f"{flavour:5s} {kernels}{note}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Accept the flag spelling `--check` as an alias for the
    # subcommand, so `tools/bench_history.py --check` works in CI
    # one-liners.
    argv = ["check" if a == "--check" else a for a in argv]

    parser = argparse.ArgumentParser(
        prog="bench_history",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--report",
        type=Path,
        default=REPO_ROOT / "BENCH_repro.json",
        help="bench report to gate/record (default: BENCH_repro.json)",
    )
    common.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "BENCH_history.jsonl",
        help="ledger path (default: BENCH_history.jsonl at the repo root)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check",
        parents=[common],
        help="gate the report against the ledger; exit 1 on regression",
    )
    check.add_argument(
        "--baseline",
        metavar="RUN_ID",
        default=None,
        help="compare against this ledger entry (default: newest comparable)",
    )
    check.add_argument(
        "--tolerance",
        action="append",
        default=[],
        metavar="METRIC=FACTOR",
        help=(
            "override a metric's max worsening factor, e.g. seconds=2.0 "
            f"(defaults: {json.dumps(DEFAULT_TOLERANCES)})"
        ),
    )
    check.set_defaults(func=_cmd_check)

    append = sub.add_parser(
        "append", parents=[common], help="record the report in the ledger"
    )
    append.add_argument(
        "--note", default="", help="free-text label stored with the entry"
    )
    append.add_argument(
        "--run-id",
        default=None,
        help="explicit run id (default: content hash of the records)",
    )
    append.add_argument(
        "--recorded-at",
        default=None,
        metavar="ISO8601",
        help="timestamp to store (default: UTC now)",
    )
    append.add_argument(
        "--allow-duplicate",
        action="store_true",
        help="append even when the same run id is already recorded",
    )
    append.set_defaults(func=_cmd_append)

    lst = sub.add_parser(
        "list", parents=[common], help="print the ledger, oldest first"
    )
    lst.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
