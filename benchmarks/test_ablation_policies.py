"""Ablation — replacement policy sensitivity.

The paper models LRU specifically.  How much do its numbers depend on
that choice?  For the independent-reference pattern of its query
models, stack-ish policies (LRU, CLOCK, FIFO) should behave almost
identically and RANDOM somewhat worse, so conclusions drawn from the
LRU model carry over to real buffer managers using CLOCK."""

from repro.experiments.common import Table, get_description
from repro.model import buffer_model
from repro.queries import UniformPointWorkload
from repro.simulation import simulate

from .conftest import run_once

POLICIES = ("lru", "clock", "fifo", "random")
BUFFER_SIZES = (50, 200)


def _run():
    desc = get_description("region", 50_000, 100, "hs")
    workload = UniformPointWorkload()
    rows = {}
    for b in BUFFER_SIZES:
        model = buffer_model(desc, workload, b).disk_accesses
        measured = {
            policy: simulate(
                desc, workload, b, policy=policy, n_batches=5, batch_size=4000
            ).disk_accesses.mean
            for policy in POLICIES
        }
        rows[b] = (model, measured)
    return rows


def test_policy_ablation(benchmark, record):
    rows = run_once(benchmark, _run)

    table = Table(["buffer", "LRU model"] + [p.upper() for p in POLICIES])
    for b, (model, measured) in rows.items():
        table.add(b, model, *[measured[p] for p in POLICIES])
    text = table.to_text(
        "Ablation: disk accesses per point query by replacement policy "
        "(synthetic region 50k, HS, capacity 100)"
    )
    record("ablation_policies", text)

    for b, (model, measured) in rows.items():
        # LRU and CLOCK nearly coincide.
        assert abs(measured["clock"] - measured["lru"]) < 0.10 * measured["lru"]
        # FIFO is close to LRU for this access pattern.
        assert abs(measured["fifo"] - measured["lru"]) < 0.15 * measured["lru"]
        # RANDOM never beats LRU by a meaningful margin.
        assert measured["random"] > 0.9 * measured["lru"]
        # The analytic LRU model tracks the LRU simulation.
        assert abs(model - measured["lru"]) < 0.10 * measured["lru"]
