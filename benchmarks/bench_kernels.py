"""Benchmark the spatial-acceleration kernels and write ``BENCH_repro.json``.

Measures the sparse kernels of :mod:`repro.accel` against their dense
oracles on the two compute-dominant paths of the reproduction:

* ``data_driven_access_probabilities`` — Eq. 4 probabilities (sorted
  range-count kernel vs the dense containment matrix);
* ``point_stab`` — CSR point-stabbing (grid index vs dense matrix);
* ``simulator_query_throughput`` — the §4 simulator's per-query loop
  (stab + LRU buffer requests) end to end.

The report is a machine-readable JSON file (schema ``repro-bench/1``,
see :data:`RECORD_FIELDS` and ``docs/PERFORMANCE.md``) written to the
repo root so successive PRs accumulate a performance trajectory to
regress against.  CI runs the ``--smoke`` sizes and validates the
emitted file with ``--validate``.

Usage::

    python benchmarks/bench_kernels.py                 # full sizes (~10 min)
    python benchmarks/bench_kernels.py --smoke         # CI-sized, seconds
    python benchmarks/bench_kernels.py --validate BENCH_repro.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python benchmarks/bench_kernels.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.accel import DenseStabber, GridStabbingIndex, SortedRangeCounter
from repro.buffer import LRUBuffer
from repro.geometry import RectArray
from repro.model.access import data_driven_probabilities
from repro.obs.history import (
    BENCH_SCHEMA,
    RECORD_FIELDS,
    validate_bench_report,
)

__all__ = [
    "RECORD_FIELDS",
    "SCHEMA",
    "build_report",
    "main",
    "validate_report",
]

SCHEMA = BENCH_SCHEMA
"""Report schema tag (canonical home: :mod:`repro.obs.history`)."""

_QUERY_CHUNK = 4096
"""Queries per stab batch in the simulator-loop benchmark (matches
``repro.simulation.engine._CHUNK``)."""


def _node_like_rects(rng: np.random.Generator, n: int) -> RectArray:
    """``n`` node-MBR-like rectangles in the unit square.

    Sides are ~``1/sqrt(n)`` with lognormal jitter — roughly the MBR
    population of a packed R-tree's leaf level over uniform data.
    """
    sides = rng.lognormal(mean=0.0, sigma=0.5, size=(n, 2)) / np.sqrt(n)
    sides = np.minimum(sides, 0.9)
    lo = rng.random((n, 2)) * (1.0 - sides)
    return RectArray(lo, lo + sides)


def _bench_data_driven(rng: np.random.Generator, n_rects: int, n_points: int) -> dict:
    """Eq. 4 access probabilities: sorted kernel vs dense matrix."""
    rects = _node_like_rects(rng, n_rects)
    centers = rng.random((n_points, 2))
    extents = (0.01, 0.01)

    started = time.perf_counter()
    counter = SortedRangeCounter(centers)
    fast = data_driven_probabilities(
        rects, centers, extents, counter=counter
    )
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense = data_driven_probabilities(rects, centers, extents, method="dense")
    dense_seconds = time.perf_counter() - started

    if not np.array_equal(fast, dense):
        raise AssertionError("sorted kernel diverged from the dense oracle")
    return _record(
        "data_driven_access_probabilities",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_rects * n_points,
        unit="pair-tests/s",
    )


def _bench_point_stab(rng: np.random.Generator, n_rects: int, n_points: int) -> dict:
    """CSR point stabbing: grid index (incl. build) vs dense matrix."""
    rects = _node_like_rects(rng, n_rects)
    points = rng.random((n_points, 2))

    started = time.perf_counter()
    sparse = GridStabbingIndex(rects).stab(points)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense = DenseStabber(rects).stab(points)
    dense_seconds = time.perf_counter() - started

    if not (
        np.array_equal(sparse.indptr, dense.indptr)
        and np.array_equal(sparse.ids, dense.ids)
    ):
        raise AssertionError("grid stab diverged from the dense oracle")
    return _record(
        "point_stab",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_rects * n_points,
        unit="pair-tests/s",
    )


def _run_sim_loop(stabber, points: np.ndarray, buffer_size: int) -> int:
    """The simulator's measurement loop: stab, then request top-down."""
    buffer = LRUBuffer(buffer_size, ())
    misses = 0
    for start in range(0, points.shape[0], _QUERY_CHUNK):
        sparse = stabber.stab(points[start : start + _QUERY_CHUNK])
        request = buffer.request
        for ids in sparse.iter_rows():
            for node_id in ids:
                if not request(int(node_id)):
                    misses += 1
    return misses


def _bench_sim_throughput(
    rng: np.random.Generator, n_rects: int, n_points: int
) -> dict:
    """End-to-end simulator query throughput, grid vs dense backend."""
    rects = _node_like_rects(rng, n_rects)
    points = rng.random((n_points, 2))
    buffer_size = max(1, n_rects // 10)

    started = time.perf_counter()
    misses_grid = _run_sim_loop(GridStabbingIndex(rects), points, buffer_size)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    misses_dense = _run_sim_loop(DenseStabber(rects), points, buffer_size)
    dense_seconds = time.perf_counter() - started

    if misses_grid != misses_dense:
        raise AssertionError("sim loop miss counts diverged across backends")
    return _record(
        "simulator_query_throughput",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_points,
        unit="queries/s",
    )


def _record(
    kernel: str,
    n_rects: int,
    n_points: int,
    seconds: float,
    dense_seconds: float,
    *,
    ops: int,
    unit: str,
) -> dict:
    seconds = max(seconds, 1e-9)
    dense_seconds = max(dense_seconds, 1e-9)
    return {
        "kernel": kernel,
        "n_rects": int(n_rects),
        "n_points": int(n_points),
        "seconds": seconds,
        "ops_per_s": ops / seconds,
        "unit": unit,
        "dense_seconds": dense_seconds,
        "speedup_vs_dense": dense_seconds / seconds,
    }


_FULL_SIZES = {
    "data_driven": (100_000, 100_000),
    "point_stab": (50_000, 20_000),
    "sim_throughput": (50_000, 20_000),
}

_SMOKE_SIZES = {
    "data_driven": (1_500, 1_500),
    "point_stab": (4_000, 2_000),
    "sim_throughput": (4_000, 2_000),
}


def build_report(seed: int = 0, smoke: bool = False) -> dict:
    """Run every kernel benchmark and assemble the report dict."""
    sizes = _SMOKE_SIZES if smoke else _FULL_SIZES
    rng = np.random.default_rng(seed)
    records = [
        _bench_data_driven(rng, *sizes["data_driven"]),
        _bench_point_stab(rng, *sizes["point_stab"]),
        _bench_sim_throughput(rng, *sizes["sim_throughput"]),
    ]
    return {
        "schema": SCHEMA,
        "seed": int(seed),
        "smoke": bool(smoke),
        "records": records,
    }


def validate_report(report: object) -> list[str]:
    """Schema errors in a parsed report (empty list = valid).

    Delegates to :func:`repro.obs.history.validate_bench_report` — the
    ledger owns the schema, so the producer can never drift from it.
    """
    return validate_bench_report(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_repro.json",
        help="report path (default: BENCH_repro.json at the repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--validate",
        type=Path,
        metavar="FILE",
        help="validate an existing report against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{args.validate}: unreadable report: {exc}")
            return 1
        errors = validate_report(report)
        for error in errors:
            print(f"{args.validate}: {error}")
        if errors:
            return 1
        print(f"{args.validate}: valid {SCHEMA} report "
              f"({len(report['records'])} record(s))")
        return 0

    report = build_report(seed=args.seed, smoke=args.smoke)
    for record in report["records"]:
        print(
            f"{record['kernel']}: {record['n_rects']} rects x "
            f"{record['n_points']} points -> {record['seconds']:.3f}s "
            f"(dense {record['dense_seconds']:.3f}s, "
            f"{record['speedup_vs_dense']:.1f}x)"
        )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
