"""Benchmark the spatial-acceleration kernels and write ``BENCH_repro.json``.

Measures the sparse kernels of :mod:`repro.accel` against their dense
oracles on the two compute-dominant paths of the reproduction:

* ``data_driven_access_probabilities`` — Eq. 4 probabilities (sorted
  range-count kernel vs the dense containment matrix);
* ``point_stab`` — CSR point-stabbing (grid index vs dense matrix);
* ``simulator_query_throughput`` — the §4 simulator's per-query loop
  (stab + LRU buffer requests) end to end;
* ``stack_distance_sweep`` — one offline Mattson pass over all buffer
  sizes (:func:`repro.simulation.simulate_sweep`) vs per-capacity
  online simulation, asserted bit-exact;
* ``probe_simulation_throughput`` — the instrumented metrics-probe
  simulation (registry + per-level sink + trace ring) in queries/s,
  grid vs dense stabbing backend;
* ``sweep_parallel`` — the sharded process-pool sweep
  (``workers=4`` over shared memory, :mod:`repro.simulation.shard`)
  vs the in-process single-pass sweep as baseline, asserted
  bit-exact.  ``speedup_vs_dense`` here is parallel-vs-serial; it
  tracks the host's core count (a 1-CPU container honestly reports
  < 1x — the pool only adds fork and IPC overhead there);
* ``serving_throughput`` — the serving engine's micro-batched
  admission (:class:`repro.serving.QueryService`, ``max_batch=4096``)
  vs the naive per-query loop (``max_batch=0``: one stab call per
  query) over identical points, asserted to produce identical buffer
  counters.  ``speedup_vs_dense`` is the batching amortization — the
  PR's gated >= 10x claim at 100k queries;
* ``serving_latency_p99`` — saturation-mode tail latency: every query
  "arrives" at t0 and ``seconds`` is the batched p99 (so
  ``ops_per_s`` is the achieved drain rate), ``dense_seconds`` the
  per-query-loop p99 over the same points;
* ``telemetry_overhead`` — identical batched serving runs with a live
  :class:`repro.obs.TelemetrySink` (background ticker streaming JSONL
  to a scratch file) vs the None-default sink, asserted to produce
  identical buffer counters.  ``speedup_vs_dense`` is
  disabled/enabled wall time — the observability tax, gated at
  <= 1.10x slowdown by ``tests/accel/test_bench_schema.py``;
* ``serving_multicore`` — batched serving through the
  process-per-shard worker topology (``worker_processes=True``, four
  fork workers, :mod:`repro.serving.workers`) vs the in-process
  sharded pool at the same K=4, asserted to produce bit-identical
  per-shard and aggregate counters on every run.
  ``speedup_vs_dense`` is process-vs-in-process queries/s; like
  ``sweep_parallel`` it tracks the host, with no floor asserted.  Even
  a 1-CPU container can report > 1x here — each worker owns its shard
  outright, so the per-page lock acquisitions the in-process pool pays
  disappear — but the ratio only becomes a scaling claim on multi-core
  hosts, where the history ledger records it per host.

The report is a machine-readable JSON file (schema ``repro-bench/1``,
see :data:`RECORD_FIELDS` and ``docs/PERFORMANCE.md``) written to the
repo root so successive PRs accumulate a performance trajectory to
regress against.  CI runs the ``--smoke`` sizes and validates the
emitted file with ``--validate``.

Usage::

    python benchmarks/bench_kernels.py                 # full sizes (~10 min)
    python benchmarks/bench_kernels.py --smoke         # CI-sized, seconds
    python benchmarks/bench_kernels.py --validate BENCH_repro.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent

try:  # installed package (CI) or PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # plain checkout: python benchmarks/bench_kernels.py
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.accel import DenseStabber, GridStabbingIndex, SortedRangeCounter
from repro.buffer import LRUBuffer
from repro.geometry import RectArray
from repro.model.access import data_driven_probabilities
from repro.obs import MetricsRegistry, TelemetrySink
from repro.obs.history import (
    BENCH_SCHEMA,
    RECORD_FIELDS,
    validate_bench_report,
)
from repro.packing import pack_description
from repro.queries import UniformPointWorkload
from repro.serving import QueryService
from repro.simulation import simulate, simulate_sweep

__all__ = [
    "RECORD_FIELDS",
    "SCHEMA",
    "build_report",
    "main",
    "validate_report",
]

SCHEMA = BENCH_SCHEMA
"""Report schema tag (canonical home: :mod:`repro.obs.history`)."""

_QUERY_CHUNK = 4096
"""Queries per stab batch in the simulator-loop benchmark (matches
``repro.simulation.engine._CHUNK``)."""


def _node_like_rects(rng: np.random.Generator, n: int) -> RectArray:
    """``n`` node-MBR-like rectangles in the unit square.

    Sides are ~``1/sqrt(n)`` with lognormal jitter — roughly the MBR
    population of a packed R-tree's leaf level over uniform data.
    """
    sides = rng.lognormal(mean=0.0, sigma=0.5, size=(n, 2)) / np.sqrt(n)
    sides = np.minimum(sides, 0.9)
    lo = rng.random((n, 2)) * (1.0 - sides)
    return RectArray(lo, lo + sides)


def _bench_data_driven(rng: np.random.Generator, n_rects: int, n_points: int) -> dict:
    """Eq. 4 access probabilities: sorted kernel vs dense matrix."""
    rects = _node_like_rects(rng, n_rects)
    centers = rng.random((n_points, 2))
    extents = (0.01, 0.01)

    started = time.perf_counter()
    counter = SortedRangeCounter(centers)
    fast = data_driven_probabilities(
        rects, centers, extents, counter=counter
    )
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense = data_driven_probabilities(rects, centers, extents, method="dense")
    dense_seconds = time.perf_counter() - started

    if not np.array_equal(fast, dense):
        raise AssertionError("sorted kernel diverged from the dense oracle")
    return _record(
        "data_driven_access_probabilities",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_rects * n_points,
        unit="pair-tests/s",
    )


def _bench_point_stab(rng: np.random.Generator, n_rects: int, n_points: int) -> dict:
    """CSR point stabbing: grid index (incl. build) vs dense matrix."""
    rects = _node_like_rects(rng, n_rects)
    points = rng.random((n_points, 2))

    started = time.perf_counter()
    sparse = GridStabbingIndex(rects).stab(points)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense = DenseStabber(rects).stab(points)
    dense_seconds = time.perf_counter() - started

    if not (
        np.array_equal(sparse.indptr, dense.indptr)
        and np.array_equal(sparse.ids, dense.ids)
    ):
        raise AssertionError("grid stab diverged from the dense oracle")
    return _record(
        "point_stab",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_rects * n_points,
        unit="pair-tests/s",
    )


def _run_sim_loop(stabber, points: np.ndarray, buffer_size: int) -> int:
    """The simulator's measurement loop: stab, then request top-down."""
    buffer = LRUBuffer(buffer_size, ())
    misses = 0
    for start in range(0, points.shape[0], _QUERY_CHUNK):
        sparse = stabber.stab(points[start : start + _QUERY_CHUNK])
        request = buffer.request
        for ids in sparse.iter_rows():
            for node_id in ids:
                if not request(int(node_id)):
                    misses += 1
    return misses


def _bench_sim_throughput(
    rng: np.random.Generator, n_rects: int, n_points: int
) -> dict:
    """End-to-end simulator query throughput, grid vs dense backend."""
    rects = _node_like_rects(rng, n_rects)
    points = rng.random((n_points, 2))
    buffer_size = max(1, n_rects // 10)

    started = time.perf_counter()
    misses_grid = _run_sim_loop(GridStabbingIndex(rects), points, buffer_size)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    misses_dense = _run_sim_loop(DenseStabber(rects), points, buffer_size)
    dense_seconds = time.perf_counter() - started

    if misses_grid != misses_dense:
        raise AssertionError("sim loop miss counts diverged across backends")
    return _record(
        "simulator_query_throughput",
        n_rects,
        n_points,
        seconds,
        dense_seconds,
        ops=n_points,
        unit="queries/s",
    )


def _same_result(a, b) -> bool:
    """Bit-exact equality of two ``SimulationResult`` measurements."""
    return (
        a.warmup_queries == b.warmup_queries
        and a.buffer_filled == b.buffer_filled
        and len(a.batch_stats) == len(b.batch_stats)
        and all(
            x.as_dict() == y.as_dict()
            for x, y in zip(a.batch_stats, b.batch_stats)
        )
        and a.disk_accesses == b.disk_accesses
        and a.node_accesses == b.node_accesses
    )


def _bench_stack_distance_sweep(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """One Mattson pass over 8 capacities vs 8 online simulations."""
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    buffer_sizes = tuple(
        int(b)
        for b in np.unique(
            np.geomspace(2, max(8, int(desc.total_nodes * 0.8)), 8).round()
        )
    )
    n_batches = 10
    batch_size = max(1, n_queries // n_batches)
    seed = int(rng.integers(1 << 31))
    kwargs = dict(n_batches=n_batches, batch_size=batch_size, rng=seed)

    started = time.perf_counter()
    sweep = simulate_sweep(desc, workload, buffer_sizes, **kwargs)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    online = [simulate(desc, workload, b, **kwargs) for b in buffer_sizes]
    dense_seconds = time.perf_counter() - started

    for b, fast, slow in zip(buffer_sizes, sweep, online):
        if not _same_result(fast, slow):
            raise AssertionError(
                f"stack-distance sweep diverged from the online LRU "
                f"engine at buffer size {b}"
            )
    return _record(
        "stack_distance_sweep",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=len(buffer_sizes) * n_batches * batch_size,
        unit="capacity-queries/s",
    )


def _bench_sweep_parallel(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """The 4-worker sharded sweep vs the in-process pass as baseline.

    Both paths must return bit-identical tuples — the assert is the
    benchmark's correctness half.  The timing half is honest about the
    host: the ratio approaches the worker count only with that many
    free cores, and drops below 1x on a single-CPU container.
    """
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    buffer_sizes = tuple(
        int(b)
        for b in np.unique(
            np.geomspace(2, max(8, int(desc.total_nodes * 0.8)), 8).round()
        )
    )
    n_batches = 10
    batch_size = max(1, n_queries // n_batches)
    seed = int(rng.integers(1 << 31))
    kwargs = dict(n_batches=n_batches, batch_size=batch_size, rng=seed)

    started = time.perf_counter()
    serial = simulate_sweep(desc, workload, buffer_sizes, **kwargs)
    dense_seconds = time.perf_counter() - started

    started = time.perf_counter()
    sharded = simulate_sweep(
        desc, workload, buffer_sizes, workers=4, **kwargs
    )
    seconds = time.perf_counter() - started

    for b, fast, slow in zip(buffer_sizes, sharded, serial):
        if not _same_result(fast, slow):
            raise AssertionError(
                f"sharded sweep diverged from the in-process sweep at "
                f"buffer size {b}"
            )
    return _record(
        "sweep_parallel",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=len(buffer_sizes) * n_batches * batch_size,
        unit="capacity-queries/s",
    )


def _bench_probe_throughput(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """The instrumented metrics-probe simulation, grid vs dense."""
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    n_batches = 5
    batch_size = max(1, n_queries // n_batches)
    seed = int(rng.integers(1 << 31))
    kwargs = dict(
        buffer_size=max(2, desc.total_nodes // 5),
        n_batches=n_batches,
        batch_size=batch_size,
        warmup_queries=2048,
        trace_last=8,
        rng=seed,
    )

    started = time.perf_counter()
    fast = simulate(
        desc, workload, registry=MetricsRegistry(), accel="auto", **kwargs
    )
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    dense = simulate(
        desc, workload, registry=MetricsRegistry(), accel="dense", **kwargs
    )
    dense_seconds = time.perf_counter() - started

    if not _same_result(fast, dense):
        raise AssertionError("probe results diverged across accel backends")
    return _record(
        "probe_simulation_throughput",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=kwargs["warmup_queries"] + n_batches * batch_size,
        unit="queries/s",
    )


def _serving_pair(
    rng: np.random.Generator, n_rects: int, n_queries: int
):
    """Two services over one tree — batched and per-query — plus points.

    Both run the same LRU pool (K=1) over the same point sequence, so
    their buffer counters must match exactly; the callers assert it.
    """
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    buffer_size = max(2, desc.total_nodes // 5)
    points = workload.sample_points(n_queries, rng)
    batched = QueryService(
        desc, workload, buffer_size,
        max_batch=4096, expected_queries=n_queries,
    )
    naive = QueryService(
        desc, workload, buffer_size,
        max_batch=0, expected_queries=n_queries,
    )
    return batched, naive, points


def _bench_serving_throughput(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """Micro-batched admission vs the naive per-query serving loop."""
    batched, naive, points = _serving_pair(rng, n_rects, n_queries)

    started = time.perf_counter()
    batched.process(points)
    seconds = time.perf_counter() - started

    started = time.perf_counter()
    naive.process(points)
    dense_seconds = time.perf_counter() - started

    if (
        batched.aggregate_stats().as_dict()
        != naive.aggregate_stats().as_dict()
    ):
        raise AssertionError(
            "batched serving buffer counters diverged from the "
            "per-query loop"
        )
    return _record(
        "serving_throughput",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=n_queries,
        unit="queries/s",
    )


def _bench_serving_latency(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """Saturation p99: all queries arrive at t0, measure the tail.

    ``seconds`` is the batched p99 itself (so ``ops_per_s`` reads as
    the achieved drain rate at the tail) and ``dense_seconds`` the
    per-query loop's p99 — ``speedup_vs_dense`` is the tail-latency
    improvement batching buys under saturation.
    """
    batched, naive, points = _serving_pair(rng, n_rects, n_queries)

    arrivals = np.full(n_queries, time.perf_counter_ns(), dtype=np.int64)
    batched.process(points, arrivals_ns=arrivals)
    p99_batched = batched.latency.percentile_us(99) / 1e6

    arrivals = np.full(n_queries, time.perf_counter_ns(), dtype=np.int64)
    naive.process(points, arrivals_ns=arrivals)
    p99_naive = naive.latency.percentile_us(99) / 1e6

    if (
        batched.aggregate_stats().as_dict()
        != naive.aggregate_stats().as_dict()
    ):
        raise AssertionError(
            "batched serving buffer counters diverged from the "
            "per-query loop"
        )
    return _record(
        "serving_latency_p99",
        n_rects,
        n_queries,
        p99_batched,
        p99_naive,
        ops=n_queries,
        unit="queries/s",
    )


def _bench_telemetry_overhead(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """Serving wall time with a live telemetry sink vs without.

    Both services run the same batched admission over the same points
    with per-query arrivals (so the latency recorder is hot in both);
    the instrumented one additionally carries a started
    :class:`TelemetrySink` streaming ticks to a scratch file.  The
    counters must match exactly — telemetry observes, it never steers.
    """
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    buffer_size = max(2, desc.total_nodes // 5)
    points = workload.sample_points(n_queries, rng)

    def run(telemetry_enabled: bool) -> tuple[float, dict]:
        service = QueryService(
            desc, workload, buffer_size,
            shards=2, max_batch=4096, expected_queries=n_queries,
        )
        sink = None
        scratch = None
        if telemetry_enabled:
            scratch = tempfile.NamedTemporaryFile(
                mode="w", suffix=".jsonl", delete=False
            )
            scratch.close()
            sink = TelemetrySink(
                service, interval_s=0.01, path=scratch.name
            )
            service.telemetry = sink
            sink.start()
        arrivals = np.full(
            n_queries, time.perf_counter_ns(), dtype=np.int64
        )
        started = time.perf_counter()
        service.process(points, arrivals_ns=arrivals)
        seconds = time.perf_counter() - started
        if sink is not None:
            sink.close()
            Path(scratch.name).unlink()
        return seconds, service.aggregate_stats().as_dict()

    seconds, enabled_stats = run(telemetry_enabled=True)
    dense_seconds, disabled_stats = run(telemetry_enabled=False)

    if enabled_stats != disabled_stats:
        raise AssertionError(
            "telemetry-enabled serving buffer counters diverged from "
            "the telemetry-free run"
        )
    return _record(
        "telemetry_overhead",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=n_queries,
        unit="queries/s",
    )


def _bench_serving_multicore(
    rng: np.random.Generator, n_rects: int, n_queries: int
) -> dict:
    """Process-per-shard serving (4 fork workers) vs in-process shards.

    Both services run K=4 shards over the same tree and the same point
    sequence; the process topology must produce bit-identical
    per-shard *and* aggregate buffer counters — the assert runs on
    every invocation and is the benchmark's correctness half.  The
    timing half is honest about the host, exactly like
    ``sweep_parallel``: the K concurrent request loops approach a Kx
    ratio only with that many free cores, and the batched-IPC overhead
    drops the ratio below 1x on a single-CPU container — the ledger
    tracks the per-host ratio, CI records the multi-core numbers.
    """
    rects = _node_like_rects(rng, n_rects)
    capacity = 100 if n_rects >= 20_000 else 25
    desc = pack_description(rects, capacity, "hs")
    workload = UniformPointWorkload()
    buffer_size = max(8, desc.total_nodes // 5)
    points = workload.sample_points(n_queries, rng)
    shards = 4

    inproc = QueryService(
        desc, workload, buffer_size,
        shards=shards, max_batch=4096, expected_queries=n_queries,
    )
    started = time.perf_counter()
    inproc.process(points)
    dense_seconds = time.perf_counter() - started

    multicore = QueryService(
        desc, workload, buffer_size,
        shards=shards, max_batch=4096, worker_processes=True,
        expected_queries=n_queries,
    )
    try:
        started = time.perf_counter()
        multicore.process(points)
        seconds = time.perf_counter() - started

        worker_shards = [s.as_dict() for s in multicore.pool.shard_stats()]
        inproc_shards = [s.as_dict() for s in inproc.pool.shard_stats()]
        if worker_shards != inproc_shards:
            raise AssertionError(
                "process-worker per-shard counters diverged from the "
                "in-process sharded pool"
            )
        if (
            multicore.aggregate_stats().as_dict()
            != inproc.aggregate_stats().as_dict()
        ):
            raise AssertionError(
                "process-worker aggregate counters diverged from the "
                "in-process sharded pool"
            )
    finally:
        multicore.close()
    return _record(
        "serving_multicore",
        n_rects,
        n_queries,
        seconds,
        dense_seconds,
        ops=n_queries,
        unit="queries/s",
    )


def _record(
    kernel: str,
    n_rects: int,
    n_points: int,
    seconds: float,
    dense_seconds: float,
    *,
    ops: int,
    unit: str,
) -> dict:
    seconds = max(seconds, 1e-9)
    dense_seconds = max(dense_seconds, 1e-9)
    return {
        "kernel": kernel,
        "n_rects": int(n_rects),
        "n_points": int(n_points),
        "seconds": seconds,
        "ops_per_s": ops / seconds,
        "unit": unit,
        "dense_seconds": dense_seconds,
        "speedup_vs_dense": dense_seconds / seconds,
    }


_FULL_SIZES = {
    "data_driven": (100_000, 100_000),
    "point_stab": (50_000, 20_000),
    "sim_throughput": (50_000, 20_000),
    "stack_sweep": (50_000, 200_000),
    "probe_throughput": (50_000, 20_000),
    "sweep_parallel": (50_000, 200_000),
    "serving_throughput": (50_000, 100_000),
    "serving_latency": (50_000, 20_000),
    "telemetry_overhead": (50_000, 100_000),
    "serving_multicore": (50_000, 100_000),
}

_SMOKE_SIZES = {
    "data_driven": (1_500, 1_500),
    "point_stab": (4_000, 2_000),
    "sim_throughput": (4_000, 2_000),
    "stack_sweep": (4_000, 10_000),
    "probe_throughput": (4_000, 2_000),
    "sweep_parallel": (4_000, 10_000),
    "serving_throughput": (4_000, 5_000),
    "serving_latency": (4_000, 2_000),
    "telemetry_overhead": (4_000, 5_000),
    "serving_multicore": (4_000, 5_000),
}


def build_report(seed: int = 0, smoke: bool = False) -> dict:
    """Run every kernel benchmark and assemble the report dict."""
    sizes = _SMOKE_SIZES if smoke else _FULL_SIZES
    rng = np.random.default_rng(seed)
    records = [
        _bench_data_driven(rng, *sizes["data_driven"]),
        _bench_point_stab(rng, *sizes["point_stab"]),
        _bench_sim_throughput(rng, *sizes["sim_throughput"]),
        _bench_stack_distance_sweep(rng, *sizes["stack_sweep"]),
        _bench_probe_throughput(rng, *sizes["probe_throughput"]),
        _bench_sweep_parallel(rng, *sizes["sweep_parallel"]),
        _bench_serving_throughput(rng, *sizes["serving_throughput"]),
        _bench_serving_latency(rng, *sizes["serving_latency"]),
        _bench_telemetry_overhead(rng, *sizes["telemetry_overhead"]),
        _bench_serving_multicore(rng, *sizes["serving_multicore"]),
    ]
    return {
        "schema": SCHEMA,
        "seed": int(seed),
        "smoke": bool(smoke),
        "records": records,
    }


def validate_report(report: object) -> list[str]:
    """Schema errors in a parsed report (empty list = valid).

    Delegates to :func:`repro.obs.history.validate_bench_report` — the
    ledger owns the schema, so the producer can never drift from it.
    """
    return validate_bench_report(report)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_repro.json",
        help="report path (default: BENCH_repro.json at the repo root)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--validate",
        type=Path,
        metavar="FILE",
        help="validate an existing report against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.validate is not None:
        try:
            report = json.loads(args.validate.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{args.validate}: unreadable report: {exc}")
            return 1
        errors = validate_report(report)
        for error in errors:
            print(f"{args.validate}: {error}")
        if errors:
            return 1
        print(f"{args.validate}: valid {SCHEMA} report "
              f"({len(report['records'])} record(s))")
        return 0

    report = build_report(seed=args.seed, smoke=args.smoke)
    for record in report["records"]:
        print(
            f"{record['kernel']}: {record['n_rects']} rects x "
            f"{record['n_points']} points -> {record['seconds']:.3f}s "
            f"(dense {record['dense_seconds']:.3f}s, "
            f"{record['speedup_vs_dense']:.1f}x)"
        )
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
