"""Table 2 — nodes per level of the 4-level pinning-study trees."""

from repro.experiments import table2

from .conftest import run_once


def test_table2_tree_shapes(benchmark, record):
    result = run_once(benchmark, table2.run)
    record("table2", result.to_text())

    # All trees have 4 levels (paper: "R-trees with 4 levels").
    for size, counts in result.counts.items():
        assert len(counts) == 4, (size, counts)
        assert counts[0] == 1

    # The page counts quoted in §5.5.
    assert result.counts[250_000] == (1, 16, 400, 10000)
    assert result.pinned_pages(250_000, 3) == 417
    assert result.pinned_pages(80_000, 3) == 135
