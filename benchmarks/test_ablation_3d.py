"""Ablation — the model in three dimensions.

The paper claims "generalizations to higher dimensions are
straightforward" but never evaluates them.  This bench builds a 3-D
Hilbert-packed tree (via the d-dimensional Skilling curve), runs the
buffer model, and validates it against the simulator — the same ≤
few-percent agreement as in 2-D."""

import numpy as np

from repro.geometry import RectArray
from repro.model import buffer_model
from repro.packing import pack_description
from repro.queries import UniformPointWorkload, UniformRegionWorkload
from repro.simulation import simulate

from .conftest import run_once

DATA_SIZE = 30_000
CAPACITY = 50
BUFFER_SIZES = (20, 100)


def _run():
    rng = np.random.default_rng(3)
    lo = rng.random((DATA_SIZE, 3)) * 0.97
    data = RectArray(lo, lo + rng.random((DATA_SIZE, 3)) * 0.03)
    desc = pack_description(data, CAPACITY, "hs")
    rows = []
    for workload, label in (
        (UniformPointWorkload(dim=3), "point"),
        (UniformRegionWorkload((0.1, 0.1, 0.1)), "region 0.1^3"),
    ):
        for b in BUFFER_SIZES:
            model = buffer_model(desc, workload, b).disk_accesses
            sim = simulate(
                desc, workload, b, n_batches=8, batch_size=4000
            ).disk_accesses
            err = 100.0 * (model - sim.mean) / sim.mean if sim.mean else 0.0
            rows.append((label, b, model, sim.mean, err))
    return desc.node_counts, rows


def test_3d_model_validation(benchmark, record):
    node_counts, rows = run_once(benchmark, _run)

    lines = [
        f"Ablation: 3-D buffer model vs simulation (tree levels {node_counts})",
        f"{'workload':>14} {'buffer':>7} {'model':>9} {'sim':>9} {'err %':>7}",
    ]
    for label, b, model, sim, err in rows:
        lines.append(f"{label:>14} {b:>7} {model:>9.4f} {sim:>9.4f} {err:>7.2f}")
    record("ablation_3d", "\n".join(lines))

    for label, b, model, sim, err in rows:
        assert abs(err) < 6.0, (label, b, err)
