"""Fig. 6 — disk accesses vs buffer size, TAT/NX/HS on Long Beach data.

The paper's central qualitative claim lives here: judged without a
buffer, TAT beats NX for region queries; with a sufficiently large
buffer the ranking flips.  "Ignoring buffering would result in the
incorrect conclusion that TAT is better than NX."

Known deviation (documented in EXPERIMENTS.md): on our synthetic
Long-Beach substitute the point-query panel ranks NX worst (the paper
shows TAT worst), and the region-query crossover lands at a larger
buffer (~400-500 pages vs the paper's 200).  The ranking *flip* itself
— the claim the paper is making — reproduces.
"""

from repro.experiments import fig6

from .conftest import run_once


def test_fig6_buffer_sensitivity(benchmark, record):
    result = run_once(benchmark, fig6.run)
    record("fig6", result.to_text())

    # Bufferless metric: TAT looks better than NX for region queries.
    assert result.region_node_accesses["tat"] < result.region_node_accesses["nx"]

    # With enough buffer the ranking flips: NX beats TAT.
    cross = result.crossover_buffer("tat", "nx", region=True)
    assert cross is not None, "the paper's TAT/NX ranking flip must occur"

    # HS dominates both, at every buffer size and for both query types.
    for curves in (result.point_curves, result.region_curves):
        for loader in ("tat", "nx"):
            for hs, other in zip(curves["hs"], curves[loader]):
                assert hs <= other + 1e-9

    # Disk accesses are monotone non-increasing in buffer size.
    for curves in (result.point_curves, result.region_curves):
        for series in curves.values():
            assert list(series) == sorted(series, reverse=True)

    # §5.3: the well-structured HS tree capitalises on a small buffer
    # for point queries — 10% of the tree at least halves its cost —
    # while the poorly-structured tree's reduction is more linear.
    hs_total = 539  # 532 + 6 + 1 pages
    ten_percent = min(
        (b for b in result.buffer_sizes if b >= 0.1 * hs_total),
    )
    i = result.buffer_sizes.index(ten_percent)
    hs_reduction = result.point_curves["hs"][i] / result.point_node_accesses["hs"]
    assert hs_reduction < 0.5
