"""Ablation — the R*-tree insertion policy under the buffer model.

Reference [1] of the paper, run through the paper's own methodology:
build trees with Guttman TAT and with R* (forced reinsertion + overlap
split), then compare expected disk accesses.  The classic result — R*
builds better trees — should survive buffering."""

from repro.experiments.common import Table, get_dataset
from repro.model import buffer_model, expected_node_accesses
from repro.packing import load_description
from repro.queries import UniformPointWorkload

from .conftest import run_once

BUFFER_SIZES = (10, 50, 200)
DATA_SIZE = 15_000
CAPACITY = 25


def _run():
    data = get_dataset("region", DATA_SIZE)
    workload = UniformPointWorkload()
    out = {}
    for loader in ("tat", "rstar", "hs"):
        desc = load_description(loader, data, CAPACITY)
        out[loader] = {
            "nodes": desc.total_nodes,
            "ept": expected_node_accesses(desc, workload),
            "ed": {
                b: buffer_model(desc, workload, b).disk_accesses
                for b in BUFFER_SIZES
            },
        }
    return out


def test_rstar_ablation(benchmark, record):
    result = run_once(benchmark, _run)

    table = Table(
        ["loader", "nodes", "EPT"] + [f"ED B={b}" for b in BUFFER_SIZES]
    )
    for loader, stats in result.items():
        table.add(
            loader,
            stats["nodes"],
            stats["ept"],
            *[stats["ed"][b] for b in BUFFER_SIZES],
        )
    record(
        "ablation_rstar",
        table.to_text(
            "Ablation: Guttman TAT vs R* insertion vs HS packing "
            f"(synthetic region {DATA_SIZE}, capacity {CAPACITY})"
        ),
    )

    # R* builds a better dynamic tree than Guttman...
    assert result["rstar"]["ept"] < result["tat"]["ept"]
    for b in BUFFER_SIZES:
        assert result["rstar"]["ed"][b] <= result["tat"]["ed"][b] * 1.05
    # ...with better space utilisation (fewer nodes).
    assert result["rstar"]["nodes"] <= result["tat"]["nodes"]
