"""Fig. 8 — uniform vs data-driven point queries on the CFD data.

Paper anchors: the effect of Fig. 7, amplified by the extreme skew —
uniform queries concentrate on a few huge MBRs that cache perfectly
(absolute costs drop to ~0.06 accesses/query range) and the uniform
buffer-speedup ratios run "in excess of 20", while data-driven queries
improve far more modestly."""

from repro.experiments import fig8

from .conftest import run_once


def test_fig8_cfd(benchmark, record):
    result = run_once(benchmark, fig8.run)
    record("fig8", result.to_text())

    for uniform, driven in zip(result.uniform, result.data_driven):
        assert driven > uniform

    # Ratios in excess of 20 for uniform queries.
    assert result.uniform_speedup[-1] > 20
    # Data-driven benefits far less.
    assert result.data_driven_speedup[-1] < result.uniform_speedup[-1] / 3

    # Near-zero absolute cost for uniform queries at large buffers
    # (the paper quotes 0.06 at B=100; our substitute reaches the same
    # regime within the sweep).
    assert result.uniform[-1] < 0.1
