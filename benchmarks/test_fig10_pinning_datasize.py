"""Fig. 10 — pinning benefit vs data size (HS, node size 25).

Paper anchors: pinning 0/1/2 levels is indistinguishable; pinning 3
levels saves 53% at 250k points with a 500-page buffer but only 4% at
80k points, and with a 2,000-page buffer it makes "almost no
difference"."""

import pytest

from repro.experiments import fig10

from .conftest import run_once


def test_fig10_pinning(benchmark, record):
    result = run_once(benchmark, fig10.run)
    record("fig10", result.to_text())

    # Pinning 0, 1 or 2 levels: same line in the paper's plots.
    for b in result.buffers:
        for i in range(len(result.sizes)):
            base = result.disk_accesses[(b, 0)][i]
            for p in (1, 2):
                assert result.disk_accesses[(b, p)][i] == pytest.approx(
                    base, rel=1e-3, abs=1e-9
                )

    # B=500: big win at 250k (paper 53%; we accept >20%), tiny at 80k
    # (paper 4%; we accept <10%).
    big = result.improvement(500, 250_000)
    small = result.improvement(500, 80_000)
    assert big > 0.20
    assert small < 0.10
    assert big > 3 * small

    # B=2000: pinned pages are under a quarter of the buffer — almost
    # no difference.
    assert result.improvement(2000, 250_000) < 0.05

    # Pinning never hurts (paper §5.5).
    for key, curve in result.disk_accesses.items():
        b = key[0]
        for i in range(len(result.sizes)):
            value = curve[i]
            base = result.disk_accesses[(b, 0)][i]
            if value is not None:
                assert value <= base + 1e-9
