"""Ablation — how much does the §3.1 boundary correction matter?

The paper replaces the raw Kamel-Faloutsos access probability (area of
the extended rectangle) with a clipped-and-rescaled version.  Two
effects are quantified here:

* in the *aggregate* (expected node accesses) the two nearly cancel —
  clipping removes boundary mass while the ``1/area(U')`` rescaling
  adds it back — so Eq. 2 remains a decent bufferless estimate;
* per node, however, the raw formula yields "probabilities" above 1
  near the boundary (the 1.21 of Fig. 3b), which would make the buffer
  model's ``(1-p)^N`` terms meaningless.  The correction is what makes
  the buffer model possible at all, not a cosmetic fix.
"""

from repro.experiments.common import Table, get_description
from repro.model import (
    kamel_faloutsos_estimate,
    raw_region_probabilities,
    uniform_region_probabilities,
)

from .conftest import run_once

QUERY_SIDES = (0.0, 0.01, 0.05, 0.1, 0.25, 0.5)


def _run():
    desc = get_description("region", 50_000, 100, "hs")
    rows = []
    for q in QUERY_SIDES:
        raw_total = kamel_faloutsos_estimate(desc, (q, q))
        raw_probs = raw_region_probabilities(desc.all_rects, (q, q))
        clipped_probs = uniform_region_probabilities(desc.all_rects, (q, q))
        rows.append(
            (
                q,
                raw_total,
                float(clipped_probs.sum()),
                int((raw_probs > 1.0).sum()),
                float(raw_probs.max()),
                float(clipped_probs.max()),
            )
        )
    return rows


def test_clipping_ablation(benchmark, record):
    rows = run_once(benchmark, _run)

    table = Table(
        [
            "query side",
            "raw Eq.2",
            "clipped §3.1",
            "raw p>1 nodes",
            "max raw p",
            "max clipped p",
        ]
    )
    for row in rows:
        table.add(*row)
    record(
        "ablation_clipping",
        table.to_text(
            "Ablation: raw vs boundary-corrected access probabilities"
        ),
    )

    for q, raw_total, clipped_total, n_over, max_raw, max_clipped in rows:
        # The raw aggregate never undershoots the corrected one...
        assert raw_total >= clipped_total - 1e-9
        # ...and stays within a few percent of it (the near-cancelling
        # effects): Eq. 2 remains fine as a bufferless estimate.
        if clipped_total > 0:
            assert (raw_total - clipped_total) / clipped_total < 0.05
        # Clipped probabilities are genuine probabilities.
        assert max_clipped <= 1.0 + 1e-12

    # Raw "probabilities" break down once queries grow: the big upper-
    # level nodes exceed 1 (the root reaching 2.25 at q=0.5), which the
    # buffer model cannot consume.
    by_q = {q: (n_over, max_raw) for q, _, _, n_over, max_raw, _ in rows}
    assert by_q[0.0][0] == 0
    assert by_q[0.01][0] >= 1
    assert by_q[0.5][0] >= by_q[0.01][0]
    assert by_q[0.5][1] > 1.5
