"""Fig. 7 — uniform vs data-driven point queries on Long Beach data.

Paper anchors: data-driven queries cost more (they always land on
data, while uniform queries are often pruned over empty space), and
growing the buffer from 10 to 500 pages speeds up uniform queries more
(paper: 3.91x vs 2.86x)."""

from repro.experiments import fig7

from .conftest import run_once


def test_fig7_tiger(benchmark, record):
    result = run_once(benchmark, fig7.run)
    record("fig7", result.to_text())

    # Data-driven always costs more on this data.
    for uniform, driven in zip(result.uniform, result.data_driven):
        assert driven > uniform

    # Buffer benefit is larger under the uniform model at every size.
    for u, d in zip(result.uniform_speedup[1:], result.data_driven_speedup[1:]):
        assert u >= d

    # The paper's 3.91x / 2.86x anchors, with substitution tolerance.
    assert 2.0 < result.uniform_speedup[-1] < 8.0
    assert 1.5 < result.data_driven_speedup[-1] < 5.0
    assert result.uniform_speedup[-1] > result.data_driven_speedup[-1]
