"""Fig. 5 — the CFD data set's skew (plot substitute + statistics)."""

from repro.experiments import fig5

from .conftest import run_once


def test_fig5_cfd_skew(benchmark, record):
    result = run_once(benchmark, fig5.run)
    record("fig5", result.to_text())

    assert result.n_points == 52_510
    # "Nodes are dense in areas of great change and sparse in areas of
    # little change": a small window around the wing holds a large
    # share of all points.
    assert result.center_fraction > 5 * result.center_area_fraction
    # Highly skewed cell occupancy.
    assert result.gini > 0.5
