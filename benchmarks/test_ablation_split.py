"""Ablation — split heuristics under the buffer model.

One of the paper's stated applications: "the model can be used to
evaluate the quality of any R-tree update operation, such as node
splitting policies".  This bench loads the same data tuple-at-a-time
with Guttman's quadratic and linear splits and Greene's split, and
compares the trees through the buffer model."""

from repro.experiments.common import Table, get_dataset
from repro.model import buffer_model, expected_node_accesses
from repro.packing import tat_description
from repro.queries import UniformPointWorkload

from .conftest import run_once

BUFFER_SIZES = (10, 50, 200)
DATA_SIZE = 20_000


def _run():
    data = get_dataset("region", DATA_SIZE)
    workload = UniformPointWorkload()
    out = {}
    for split in ("quadratic", "greene", "linear"):
        desc = tat_description(data, 50, split=split)
        out[split] = {
            "nodes": desc.total_nodes,
            "ept": expected_node_accesses(desc, workload),
            "ed": {
                b: buffer_model(desc, workload, b).disk_accesses
                for b in BUFFER_SIZES
            },
        }
    return out


def test_split_ablation(benchmark, record):
    result = run_once(benchmark, _run)

    table = Table(
        ["split", "nodes", "EPT"] + [f"ED B={b}" for b in BUFFER_SIZES]
    )
    for split, stats in result.items():
        table.add(
            split,
            stats["nodes"],
            stats["ept"],
            *[stats["ed"][b] for b in BUFFER_SIZES],
        )
    record(
        "ablation_split",
        table.to_text(
            "Ablation: TAT split heuristics (quadratic / Greene / linear) "
            f"(synthetic region {DATA_SIZE}, capacity 50, point queries)"
        ),
    )

    quad = result["quadratic"]
    greene = result["greene"]
    lin = result["linear"]
    # The classic result: quadratic and Greene's split both build far
    # better trees than the linear split.
    assert quad["ept"] < lin["ept"]
    assert greene["ept"] < lin["ept"]
    # And the ordering survives buffering at every size swept here.
    for b in BUFFER_SIZES:
        assert quad["ed"][b] <= lin["ed"][b] * 1.05
        assert greene["ed"][b] <= lin["ed"][b] * 1.05
