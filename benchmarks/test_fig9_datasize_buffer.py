"""Fig. 9 — cost vs data size, with and without a buffer.

Paper claim: judged by nodes visited, querying a 300k-rectangle tree
looks no more expensive than a 25k one ("this could cause a query
optimizer to produce a poor query plan"); judged by disk accesses
behind a buffer, the cost of larger trees "becomes evident"."""

from repro.experiments import fig9

from .conftest import run_once


def test_fig9_datasize(benchmark, record):
    result = run_once(benchmark, fig9.run)
    record("fig9", result.to_text())

    i25 = result.sizes.index(25_000)

    # Bufferless HS: 25k -> 300k grows by well under 2x (looks flat).
    hs_flat = result.node_accesses["hs"]
    assert hs_flat[-1] / hs_flat[i25] < 2.0

    # Behind a buffer, the same trees diverge sharply.
    for buffer_size in (10, 300):
        curve = result.disk_accesses[("hs", buffer_size)]
        assert list(curve) == sorted(curve)  # monotone in data size
    b300 = result.disk_accesses[("hs", 300)]
    # At B=300 the small tree is (nearly) free and the large tree is not.
    assert b300[i25] < 0.2
    assert b300[-1] > 1.0

    # NX is uniformly worse than HS.
    for key in result.disk_accesses:
        if key[0] == "nx":
            partner = ("hs", key[1])
            for nx, hs in zip(result.disk_accesses[key], result.disk_accesses[partner]):
                assert hs <= nx + 1e-9
