"""Ablation — STR packing (the authors' follow-up loader [7]).

The paper cites STR among the loaders its model can evaluate.  This
bench runs STR through the same Fig. 6-style sweep as NX and HS on the
Long-Beach-like data: STR should roughly match HS and clearly beat NX
on this 2-D data."""

from repro.experiments.common import Table, get_description
from repro.model import buffer_model, expected_node_accesses
from repro.queries import UniformPointWorkload, UniformRegionWorkload

from .conftest import run_once

BUFFER_SIZES = (10, 100, 300)
LOADERS = ("nx", "hs", "str")


def _run():
    point = UniformPointWorkload()
    region = UniformRegionWorkload((0.1, 0.1))
    out = {}
    for loader in LOADERS:
        desc = get_description("tiger", None, 100, loader)
        out[loader] = {
            "ept_point": expected_node_accesses(desc, point),
            "ept_region": expected_node_accesses(desc, region),
            "ed": {
                b: buffer_model(desc, region, b).disk_accesses
                for b in BUFFER_SIZES
            },
        }
    return out


def test_str_ablation(benchmark, record):
    result = run_once(benchmark, _run)

    table = Table(
        ["loader", "EPT point", "EPT region"]
        + [f"ED B={b}" for b in BUFFER_SIZES]
    )
    for loader in LOADERS:
        stats = result[loader]
        table.add(
            loader,
            stats["ept_point"],
            stats["ept_region"],
            *[stats["ed"][b] for b in BUFFER_SIZES],
        )
    record(
        "ablation_str",
        table.to_text(
            "Ablation: STR vs NX vs HS (Long-Beach-like data, capacity 100)"
        ),
    )

    # STR crushes NX on every metric here.
    assert result["str"]["ept_point"] < result["nx"]["ept_point"]
    assert result["str"]["ept_region"] < result["nx"]["ept_region"]
    for b in BUFFER_SIZES:
        assert result["str"]["ed"][b] <= result["nx"]["ed"][b]
    # And is in the same league as HS (within 2x either way).
    ratio = result["str"]["ept_region"] / result["hs"]["ept_region"]
    assert 0.5 < ratio < 2.0
