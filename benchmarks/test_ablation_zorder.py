"""Ablation — Hilbert vs Z-order packing.

Kamel & Faloutsos justified Hilbert packing by its locality advantage
over bit-interleaved Z-order.  This bench confirms the gap on the
paper's synthetic point data, with and without a buffer."""

from repro.experiments.common import Table, get_dataset
from repro.model import buffer_model, expected_node_accesses
from repro.packing import pack_description
from repro.queries import UniformPointWorkload, UniformRegionWorkload

from .conftest import run_once

DATA_SIZE = 100_000
CAPACITY = 25
BUFFER = 200


def _run():
    data = get_dataset("point", DATA_SIZE)
    rows = []
    for q in (0.0, 0.05, 0.1):
        workload = (
            UniformPointWorkload()
            if q == 0.0
            else UniformRegionWorkload((q, q))
        )
        row = {"q": q}
        for ordering in ("hs", "zorder"):
            desc = pack_description(data, CAPACITY, ordering)
            row[f"{ordering}_ept"] = expected_node_accesses(desc, workload)
            row[f"{ordering}_ed"] = buffer_model(
                desc, workload, BUFFER
            ).disk_accesses
        rows.append(row)
    return rows


def test_zorder_ablation(benchmark, record):
    rows = run_once(benchmark, _run)

    table = Table(
        ["query side", "HS EPT", "Z EPT", f"HS ED B={BUFFER}", f"Z ED B={BUFFER}"]
    )
    for row in rows:
        table.add(
            row["q"],
            row["hs_ept"],
            row["zorder_ept"],
            row["hs_ed"],
            row["zorder_ed"],
        )
    record(
        "ablation_zorder",
        table.to_text(
            "Ablation: Hilbert vs Z-order packing "
            f"(synthetic points {DATA_SIZE}, capacity {CAPACITY})"
        ),
    )

    for row in rows:
        assert row["hs_ept"] < row["zorder_ept"]
        assert row["hs_ed"] <= row["zorder_ed"] * 1.05
