"""Table 1 — validate the buffer model against the LRU simulation.

Paper claim: model and simulation agree within 2% ("less than the
confidence intervals returned from the simulation").  Our acceptance
band: 4% for every buffer size of at least half the per-query
footprint; the tiny-buffer regime (B=10 on trees whose queries touch
~5-17 nodes) is reported but judged at 20% — the model's warm-up
granularity is a whole query, so buffers smaller than one query's
footprint are outside its intended regime (see EXPERIMENTS.md).
"""

import os

from repro.experiments import table1

from .conftest import run_once


def _sim_budget() -> tuple[int, int]:
    return (
        int(os.environ.get("REPRO_SIM_BATCHES", "10")),
        int(os.environ.get("REPRO_SIM_QUERIES", "5000")),
    )


def test_table1_model_matches_simulation(benchmark, record):
    n_batches, batch_size = _sim_budget()
    result = run_once(
        benchmark,
        lambda: table1.run(n_batches=n_batches, batch_size=batch_size),
    )
    record("table1", result.to_text())

    # The paper's 1,668-node trees.
    assert all(nodes == 1668 for nodes in result.total_nodes.values())

    for row in result.rows:
        if row.buffer_size >= 50:
            assert abs(row.percent_difference) < 4.0, row
        else:
            assert abs(row.percent_difference) < 20.0, row
