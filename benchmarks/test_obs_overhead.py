"""Benchmark guard: the no-op observability path costs ~nothing.

Two pytest-benchmark cases drive the same LRU request stream with and
without a :class:`~repro.obs.NullSink` attached, plus one with the
real per-level sink for scale.  Run with::

    pytest benchmarks/test_obs_overhead.py --benchmark-only

The assertion mirrors ``tests/obs/test_overhead.py`` (kept there too
so tier-1 enforces it without the benchmark plugin's orchestration).
"""

from __future__ import annotations

from repro.buffer import LRUBuffer
from repro.obs import LevelStatsTable, NullSink

_PAGES = [i % 80 for i in range(5000)]
_OFFSETS = (0, 1, 10, 80)


def _drive(sink) -> int:
    pool = LRUBuffer(32)
    pool.sink = sink
    request = pool.request
    misses = 0
    for page in _PAGES:
        if not request(page):
            misses += 1
    return misses


def test_request_loop_no_sink(benchmark):
    misses = benchmark(_drive, None)
    assert misses > 0


def test_request_loop_null_sink(benchmark):
    misses = benchmark(_drive, NullSink())
    assert misses == _drive(None)  # identical behaviour


def test_request_loop_level_sink(benchmark):
    table = LevelStatsTable(_OFFSETS)
    misses = benchmark(_drive, table)
    assert misses == _drive(None)
    totals = table.totals()
    assert totals.requests > 0
    assert totals.hits + totals.misses == totals.requests
