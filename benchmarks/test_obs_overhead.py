"""Benchmark guard: the no-op observability path costs ~nothing.

Pytest-benchmark cases drive the same LRU request stream with and
without a :class:`~repro.obs.NullSink` attached, plus one with the
real per-level sink for scale; a second group times a short
``simulate()`` with the span tracer disabled, enabled, and stubbed
out entirely.  Run with::

    pytest benchmarks/test_obs_overhead.py --benchmark-only

The assertions mirror ``tests/obs/test_overhead.py`` (kept there too
so tier-1 enforces them without the benchmark plugin's orchestration).
"""

from __future__ import annotations

from repro.buffer import LRUBuffer
from repro.obs import NULL_SPAN, LevelStatsTable, NullSink, Tracer, use_tracer
from repro.queries import UniformPointWorkload
from repro.simulation import simulate
from tests.obs.test_levels import two_level_description

_PAGES = [i % 80 for i in range(5000)]
_OFFSETS = (0, 1, 10, 80)


def _drive(sink) -> int:
    pool = LRUBuffer(32)
    pool.sink = sink
    request = pool.request
    misses = 0
    for page in _PAGES:
        if not request(page):
            misses += 1
    return misses


def test_request_loop_no_sink(benchmark):
    misses = benchmark(_drive, None)
    assert misses > 0


def test_request_loop_null_sink(benchmark):
    misses = benchmark(_drive, NullSink())
    assert misses == _drive(None)  # identical behaviour


def test_request_loop_level_sink(benchmark):
    table = LevelStatsTable(_OFFSETS)
    misses = benchmark(_drive, table)
    assert misses == _drive(None)
    totals = table.totals()
    assert totals.requests > 0
    assert totals.hits + totals.misses == totals.requests


def _simulate_once() -> float:
    result = simulate(
        two_level_description(),
        UniformPointWorkload(),
        buffer_size=3,
        n_batches=2,
        batch_size=300,
    )
    return result.node_accesses.mean


def test_simulate_tracer_disabled(benchmark):
    # The shipped default: no tracer installed, span() returns the
    # NULL_SPAN singleton at every instrumented phase.
    assert benchmark(_simulate_once) > 0


def test_simulate_tracer_stubbed(benchmark, monkeypatch):
    # "The instrumentation was never written" baseline for the
    # disabled case above.
    import repro.simulation.engine as engine

    monkeypatch.setattr(engine, "span", lambda name, **attrs: NULL_SPAN)
    assert benchmark(_simulate_once) > 0


def test_simulate_tracer_enabled(benchmark):
    # Scale reference: a live tracer recording phase/batch spans.
    tracer = Tracer()
    previous = use_tracer(tracer)
    try:
        assert benchmark(_simulate_once) > 0
    finally:
        use_tracer(previous)
    assert len(tracer) > 0
