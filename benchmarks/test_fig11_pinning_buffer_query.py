"""Fig. 11 — pinning benefit vs buffer size and vs query size.

Paper anchors: on the Long Beach tree with 25-entry nodes, pinning 3
levels needs ~91 pages, so it is infeasible below a 100-page buffer
and only helps over a small range of buffer sizes; on the 250k-point
tree with a 500-page buffer, pinning 3 levels improves point queries
by ~35% (pinning 2: none), and the benefit decays as the region query
side QX grows toward 0.15."""

import pytest

from repro.experiments import fig11

from .conftest import run_once


def test_fig11_pinning_ranges(benchmark, record):
    result = run_once(benchmark, fig11.run)
    record("fig11", result.to_text())

    # Left panel: pin 0/1/2 identical; pin 3 infeasible below ~91 pages.
    for i, b in enumerate(result.buffer_sizes):
        p0 = result.left_curves[0][i]
        assert result.left_curves[1][i] == pytest.approx(p0, rel=1e-9)
        feasible = result.left_curves[3][i]
        if b < 91:
            assert feasible is None
        else:
            assert feasible is not None
            assert feasible <= p0 + 1e-9  # pinning never hurts
    # At the largest buffer the pin-3 advantage has vanished.
    assert result.left_curves[3][-1] is not None
    assert result.left_curves[3][-1] >= result.left_curves[0][-1] - 1e-6

    # Right panel: ~35% for point queries with 3 pinned levels, ~0%
    # with 2; decaying in QX.
    pin3 = result.right_curves[3]
    pin2 = result.right_curves[2]
    assert 20 < pin3[0] < 60
    assert pin2[0] < 1
    assert pin3[0] > pin3[len(pin3) // 2] > pin3[-1] * 0.9
    # Pinning 2 levels gains a *marginal* benefit at mid query sizes.
    assert max(pin2[1:]) > pin2[0]
