"""Ablation — quantifying update-induced degradation with the model.

The paper pitches its model for judging "the quality of any R-tree
update operation ... as measured by query performance of the resulting
tree".  This bench does exactly that for a workload the paper never
ran: start from a Hilbert-packed tree, churn an increasing share of
the data through dynamic delete + reinsert, and track the modelled
disk accesses of the resulting trees."""

import numpy as np

from repro.experiments.common import Table, get_dataset
from repro.model import buffer_model
from repro.packing import load_tree
from repro.queries import UniformPointWorkload
from repro.rtree import TreeDescription, check_tree

from .conftest import run_once

DATA_SIZE = 8_000
CAPACITY = 25
BUFFER = 50
CHURN_LEVELS = (0.0, 0.1, 0.3, 0.6)


def _run():
    data = get_dataset("region", DATA_SIZE)
    rects = list(data)
    workload = UniformPointWorkload()
    rng = np.random.default_rng(99)
    rows = []
    for churn in CHURN_LEVELS:
        tree = load_tree("hs", data, CAPACITY)
        count = int(churn * DATA_SIZE)
        victims = rng.choice(DATA_SIZE, size=count, replace=False)
        for i in victims:
            assert tree.delete(rects[int(i)], int(i))
        for i in victims:
            tree.insert(rects[int(i)], int(i))
        check_tree(tree)
        desc = TreeDescription.from_tree(tree)
        result = buffer_model(desc, workload, BUFFER)
        rows.append((churn, desc.total_nodes, result.node_accesses, result.disk_accesses))
    return rows


def test_churn_ablation(benchmark, record):
    rows = run_once(benchmark, _run)

    table = Table(["churn", "nodes", "EPT", f"ED B={BUFFER}"])
    for row in rows:
        table.add(*row)
    record(
        "ablation_churn",
        table.to_text(
            "Ablation: packed-tree degradation under delete/reinsert churn "
            f"(HS, {DATA_SIZE} rects, capacity {CAPACITY})"
        ),
    )

    costs = [ed for _, _, _, ed in rows]
    # Even light churn knocks the packed tree well off its optimum...
    assert costs[1] > 1.1 * costs[0]
    # ...and the degradation persists at every churn level (it
    # plateaus rather than growing: once most nodes have been split
    # once, the tree sits at its dynamic-equilibrium quality).
    for cost in costs[1:]:
        assert cost > 1.1 * costs[0]
