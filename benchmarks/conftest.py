"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures, prints
the rows/series, writes them to ``benchmarks/out/<name>.txt``, and
asserts the qualitative shape the paper reports.  Simulation budgets
default to a quick setting here; export ``REPRO_SIM_BATCHES`` /
``REPRO_SIM_QUERIES`` to push the validation benches toward the
paper's 20 x 10^6 queries.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def record():
    """Write an experiment's text output to benchmarks/out and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print("\n" + text)

    return _record


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
