"""Ablation — how the model-vs-simulation gap depends on query budget.

The paper simulates 20 x 10^6 queries; we default to far fewer.  This
bench grows the per-batch budget and checks that (a) the confidence
interval shrinks roughly like 1/sqrt(budget) and (b) the measured
model error is stable — i.e. the reduced default budget is not the
source of the residual model error."""

import math

from repro.experiments.common import get_description
from repro.model import buffer_model
from repro.queries import UniformPointWorkload
from repro.simulation import simulate

from .conftest import run_once

BUDGETS = (1000, 4000, 16000)
BUFFER = 100


def _run():
    desc = get_description("region", 50_000, 100, "hs")
    workload = UniformPointWorkload()
    model = buffer_model(desc, workload, BUFFER).disk_accesses
    rows = []
    for batch_size in BUDGETS:
        sim = simulate(
            desc, workload, BUFFER, n_batches=10, batch_size=batch_size
        )
        err = 100.0 * (model - sim.disk_accesses.mean) / sim.disk_accesses.mean
        rows.append(
            (batch_size, sim.disk_accesses.mean, sim.disk_accesses.half_width, err)
        )
    return model, rows


def test_sim_budget_ablation(benchmark, record):
    model, rows = run_once(benchmark, _run)

    lines = [
        "Ablation: model-vs-simulation error by query budget "
        f"(model = {model:.4f})",
        f"{'batch size':>11} {'sim mean':>10} {'ci half':>10} {'err %':>8}",
    ]
    for batch_size, mean, hw, err in rows:
        lines.append(f"{batch_size:>11} {mean:>10.4f} {hw:>10.4f} {err:>8.2f}")
    record("ablation_sim_budget", "\n".join(lines))

    # CI shrinks roughly like 1/sqrt(budget): 16x the queries should
    # cut the half-width at least 2x.
    assert rows[-1][2] < rows[0][2] / 2.0

    # The error estimate is stable across budgets (within a few CI).
    errors = [abs(err) for _, _, _, err in rows]
    assert max(errors) < 5.0
