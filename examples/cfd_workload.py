"""Scientific-visualisation scenario: skewed data, data-driven queries.

The paper's CFD story (§3.2, §5.4): researchers exploring a simulation
mesh query where the data is — densely near the wing, rarely in empty
space.  Assuming uniformly distributed queries when sizing the buffer
for such an application is badly misleading: uniform queries mostly hit
a few huge, perfectly-cached nodes, while real (data-driven) queries
spread across thousands of leaf pages.

This example sizes a buffer for a target of <= 1 disk access per query
under both query models and shows how far apart the answers are.

Run:  python examples/cfd_workload.py  [--fast]
"""

import sys

from repro import (
    DataDrivenWorkload,
    UniformPointWorkload,
    buffer_model,
    cfd_like,
    load_description,
)


def smallest_buffer_for(desc, workload, target: float, candidates) -> int | None:
    """The smallest swept buffer size meeting the target ED."""
    for b in candidates:
        if buffer_model(desc, workload, b).disk_accesses <= target:
            return b
    return None


def main(fast: bool = False) -> None:
    n = 8_000 if fast else 52_510
    data = cfd_like(n)
    desc = load_description("hs", data, capacity=25)
    print(f"data: {len(data)} CFD mesh nodes; tree levels {desc.node_counts}")

    uniform = UniformPointWorkload()
    driven = DataDrivenWorkload.from_rects(data)

    buffers = (10, 25, 50, 100, 200, 400, 800, 1600)
    print(f"\n{'buffer':>7} {'ED uniform':>12} {'ED data-driven':>15}")
    for b in buffers:
        eu = buffer_model(desc, uniform, b).disk_accesses
        ed = buffer_model(desc, driven, b).disk_accesses
        print(f"{b:>7} {eu:>12.4f} {ed:>15.4f}")

    target = 1.0
    need_uniform = smallest_buffer_for(desc, uniform, target, buffers)
    need_driven = smallest_buffer_for(desc, driven, target, buffers)
    print(f"\nbuffer needed for <= {target} disk access/query:")
    print(f"  assuming uniform queries:     {need_uniform} pages")
    print(f"  assuming data-driven queries: {need_driven} pages")
    if need_uniform and need_driven and need_driven > need_uniform:
        print(
            f"\nSizing with the uniform assumption under-provisions by "
            f"{need_driven / need_uniform:.0f}x for this workload."
        )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
