"""Quickstart: build an R-tree, query it, and predict its disk traffic.

The library's central loop in ~40 lines:

1. generate spatial data,
2. bulk-load an R-tree (Hilbert packing),
3. run a query against the real tree,
4. feed the tree's node MBRs to the paper's buffer model, and
5. cross-check the prediction with the LRU buffer simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    Rect,
    TreeDescription,
    UniformPointWorkload,
    buffer_model,
    load_tree,
    simulate,
    synthetic_region,
)


def main() -> None:
    # 1. 20,000 random squares in the unit square (paper §5.1 recipe).
    data = synthetic_region(20_000, rng=42)

    # 2. A Hilbert-packed R-tree with 100 rectangles per node/page.
    tree = load_tree("hs", data, capacity=100)
    print(f"tree: {len(tree)} rectangles, height {tree.height}, "
          f"{tree.node_count()} nodes")

    # 3. A region query against the real tree.
    query = Rect((0.40, 0.40), (0.45, 0.45))
    result = tree.query(query)
    print(f"query {query}: {len(result.items)} results, "
          f"{result.node_accesses} nodes touched "
          f"(per level: {result.accesses_per_level})")

    # 4. The paper's model: expected disk accesses per point query
    #    behind an LRU buffer of 50 pages.
    desc = TreeDescription.from_tree(tree)
    workload = UniformPointWorkload()
    predicted = buffer_model(desc, workload, buffer_size=50)
    print(f"model:      {predicted.disk_accesses:.4f} disk accesses/query "
          f"({predicted.node_accesses:.4f} node accesses; "
          f"buffer fills after N* = {predicted.n_star} queries)")

    # 5. Simulation check (the paper reports <= 2% disagreement).
    measured = simulate(desc, workload, buffer_size=50,
                        n_batches=10, batch_size=5000)
    print(f"simulation: {measured.disk_accesses.mean:.4f} "
          f"± {measured.disk_accesses.half_width:.4f} (90% CI)")
    error = abs(predicted.disk_accesses - measured.disk_accesses.mean)
    print(f"model error: {100 * error / measured.disk_accesses.mean:.2f}%")


if __name__ == "__main__":
    main()
