"""Pinning advisor: should you pin the top levels of your R-tree?

Section 5.5 of the paper ends with practical advice: pinning only pays
when the pinned pages amount to a sizeable fraction (>= ~half) of the
buffer, and the benefit shrinks for region queries.  This example
wraps that analysis into a function you can point at any tree: it
sweeps every feasible pinning depth through the buffer model and
recommends one, explaining the trade-off.

Run:  python examples/pinning_advisor.py  [--fast]
"""

import sys

from repro import (
    UniformPointWorkload,
    UniformRegionWorkload,
    load_description,
    max_pinnable_levels,
    sweep_pinning,
    synthetic_point,
)


MEANINGFUL_SAVING = 0.01
"""Recommend pinning only above a 1% saving: buffer pages have other
uses (the paper's closing advice for shared buffers)."""


def advise(desc, workload, buffer_size: int) -> None:
    sweep = sweep_pinning(desc, workload, buffer_size)
    feasible = max_pinnable_levels(desc, buffer_size)
    print(f"  buffer {buffer_size} pages; up to {feasible} level(s) pinnable")
    base = sweep.results[0].disk_accesses
    for result in sweep.results:
        saving = 0.0 if base == 0 else 100 * (base - result.disk_accesses) / base
        if abs(saving) < 0.05:
            saving = 0.0
        pages = result.pinned_pages
        print(
            f"    pin {result.pinned_levels} level(s) "
            f"({pages:>4} pages): {result.disk_accesses:.4f} "
            f"disk accesses/query ({saving:5.1f}% saved)"
        )
    best = sweep.best_levels
    saving = (
        0.0
        if base == 0
        else (base - sweep.results[best].disk_accesses) / base
    )
    if best == 0 or saving < MEANINGFUL_SAVING:
        print("    advice: do not pin — LRU already keeps the top levels hot")
    else:
        pages = sweep.results[best].pinned_pages
        print(
            f"    advice: pin {best} level(s) ({pages} pages, "
            f"{100 * pages / buffer_size:.0f}% of the buffer, "
            f"{100 * saving:.0f}% fewer disk accesses)"
        )


def main(fast: bool = False) -> None:
    n = 40_000 if fast else 250_000
    data = synthetic_point(n, rng=13)
    desc = load_description("hs", data, capacity=25)
    print(f"tree: {desc.total_nodes} pages, levels {desc.node_counts}\n")

    print("point queries:")
    advise(desc, UniformPointWorkload(), buffer_size=500)
    advise(desc, UniformPointWorkload(), buffer_size=2000)

    print("\n0.1 x 0.1 region queries (pinning benefit shrinks):")
    advise(desc, UniformRegionWorkload((0.1, 0.1)), buffer_size=500)


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
