"""Update-heavy scenario: dynamic insertion policies vs periodic repacking.

The paper's model is pitched as a judge for "any R-tree update
operation".  This example uses it on a question every update-heavy
spatial application faces: keep a dynamically maintained tree (Guttman
TAT or the R*-tree of Beckmann et al. — reference [1] of the paper),
or rebuild with a bulk loader every so often?

We simulate a day of churn — delete and reinsert a share of the data
through the dynamic path — on trees started from a Hilbert-packed
load, then score each maintenance strategy by modelled disk accesses
per query behind a shared buffer.

Run:  python examples/update_heavy_workload.py  [--fast]
"""

import sys

import numpy as np

from repro import (
    RStarTree,
    RTree,
    TreeDescription,
    UniformPointWorkload,
    buffer_model,
    load_description,
    load_tree,
    synthetic_region,
)

CAPACITY = 25
BUFFER = 100


def churn(tree, rects, fraction: float, rng) -> None:
    """Delete + reinsert ``fraction`` of the data through the tree."""
    count = int(fraction * len(rects))
    victims = rng.choice(len(rects), size=count, replace=False)
    for i in victims:
        assert tree.delete(rects[int(i)], int(i))
    for i in victims:
        tree.insert(rects[int(i)], int(i))


def modelled_cost(tree_or_desc) -> float:
    desc = (
        tree_or_desc
        if isinstance(tree_or_desc, TreeDescription)
        else TreeDescription.from_tree(tree_or_desc)
    )
    return buffer_model(desc, UniformPointWorkload(), BUFFER).disk_accesses


def build_dynamic(kind: str, rects) -> RTree:
    """A dynamically maintained tree loaded by insertion."""
    tree = RStarTree(max_entries=CAPACITY) if kind == "rstar" else RTree(
        max_entries=CAPACITY
    )
    for i, r in enumerate(rects):
        tree.insert(r, i)
    return tree


def main(fast: bool = False) -> None:
    n = 3_000 if fast else 10_000
    data = synthetic_region(n, rng=2024)
    rects = list(data)
    rng = np.random.default_rng(7)
    churn_fraction = 0.3

    print(f"{n} rectangles, capacity {CAPACITY}, buffer {BUFFER} pages, "
          f"{churn_fraction:.0%} daily churn\n")

    # Strategy 1: Hilbert pack once, maintain with Guttman updates.
    packed_then_guttman = load_tree("hs", data, CAPACITY)
    base_cost = modelled_cost(packed_then_guttman)
    churn(packed_then_guttman, rects, churn_fraction, rng)
    cost_1 = modelled_cost(packed_then_guttman)

    # Strategy 2: fully dynamic Guttman (TAT) from scratch + churn.
    guttman = build_dynamic("tat", rects)
    churn(guttman, rects, churn_fraction, np.random.default_rng(7))
    cost_2 = modelled_cost(guttman)

    # Strategy 3: fully dynamic R* + churn.
    rstar = build_dynamic("rstar", rects)
    churn(rstar, rects, churn_fraction, np.random.default_rng(7))
    cost_3 = modelled_cost(rstar)

    # Strategy 4: repack nightly (the cost right after a fresh pack).
    cost_4 = modelled_cost(load_description("hs", data, CAPACITY))

    print(f"{'strategy':<42} {'disk accesses/query':>20}")
    rows = [
        ("fresh Hilbert pack (reference)", base_cost),
        ("packed, then Guttman-maintained churn", cost_1),
        ("always-dynamic Guttman (TAT)", cost_2),
        ("always-dynamic R*", cost_3),
        ("nightly repack (post-repack cost)", cost_4),
    ]
    for label, cost in rows:
        print(f"{label:<42} {cost:>20.4f}")

    print(
        "\nThe model prices each maintenance policy in disk accesses —"
        "\nthe R*-tree narrows most of the gap to a nightly repack"
        "\nwithout any rebuild downtime."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
