"""GIS scenario: choosing a loading algorithm for road-segment data.

The paper's motivating story (its §5.2): you are indexing TIGER-style
road segments and must pick a loading algorithm.  Comparing loaders by
*nodes visited* — the pre-paper metric — can rank them incorrectly once
a real buffer pool sits under the tree.  This example reproduces that
trap on the Long-Beach-like data set: it ranks TAT, NX and HS by the
bufferless metric and by modelled disk accesses at several buffer
sizes, and reports where the two metrics disagree.

Run:  python examples/gis_workload.py  [--fast]
"""

import sys

from repro import (
    TreeDescription,
    UniformRegionWorkload,
    buffer_model,
    expected_node_accesses,
    load_description,
    tiger_like,
)


def main(fast: bool = False) -> None:
    n = 10_000 if fast else 53_145
    data = tiger_like(n)
    print(f"data: {len(data)} road-segment rectangles (Long-Beach-like)")

    loaders = ("nx", "hs") if fast else ("tat", "nx", "hs")
    capacity = 100
    workload = UniformRegionWorkload((0.1, 0.1))  # 1%-area region queries
    buffer_sizes = (10, 100, 300)

    descriptions: dict[str, TreeDescription] = {}
    for name in loaders:
        print(f"loading {name} tree...", flush=True)
        descriptions[name] = load_description(name, data, capacity)

    print(f"\n{'loader':>8} {'nodes':>7} {'EPT (no buffer)':>16}", end="")
    for b in buffer_sizes:
        print(f" {'ED B=' + str(b):>10}", end="")
    print()
    bufferless: dict[str, float] = {}
    buffered: dict[tuple[str, int], float] = {}
    for name, desc in descriptions.items():
        bufferless[name] = expected_node_accesses(desc, workload)
        print(f"{name:>8} {desc.total_nodes:>7} {bufferless[name]:>16.2f}", end="")
        for b in buffer_sizes:
            buffered[(name, b)] = buffer_model(desc, workload, b).disk_accesses
            print(f" {buffered[(name, b)]:>10.2f}", end="")
        print()

    # Where do the metrics disagree about the ranking?
    rank_bufferless = sorted(loaders, key=bufferless.__getitem__)
    print(f"\nranking by nodes visited (old metric): {rank_bufferless}")
    for b in buffer_sizes:
        rank = sorted(loaders, key=lambda name: buffered[(name, b)])
        marker = "  <-- differs!" if rank != rank_bufferless else ""
        print(f"ranking by disk accesses at B={b:>3}:      {rank}{marker}")

    print(
        "\nThe paper's point: pick your loader with the buffer in the "
        "model, or the old metric may pick the wrong one."
    )


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
