"""Capacity planning: how much buffer does an R-tree deserve?

Main memory is shared with everything else in the database, so §5.3 of
the paper asks what each extra buffer page actually buys.  This example
sweeps the buffer size for a tree and reports the marginal benefit
(saved disk accesses per added page), locating the "knee" after which
additional buffer helps only modestly — and shows the paper's
observation that well-structured trees have a sharp knee for point
queries while region queries behave much more linearly.

Run:  python examples/buffer_sizing.py  [--fast]
"""

import sys

from repro import (
    UniformPointWorkload,
    UniformRegionWorkload,
    buffer_model,
    load_description,
    tiger_like,
)


def sweep(desc, workload, buffer_sizes):
    return [
        buffer_model(desc, workload, b).disk_accesses for b in buffer_sizes
    ]


def find_knee(buffer_sizes, costs, threshold: float = 0.25) -> int | None:
    """First buffer size where the marginal saving per page drops
    below ``threshold`` times the initial marginal saving."""
    savings_per_page = [
        (costs[i - 1] - costs[i]) / (buffer_sizes[i] - buffer_sizes[i - 1])
        for i in range(1, len(costs))
    ]
    if not savings_per_page or savings_per_page[0] <= 0:
        return None
    for i, saving in enumerate(savings_per_page):
        if saving < threshold * savings_per_page[0]:
            return buffer_sizes[i + 1]
    return None


def main(fast: bool = False) -> None:
    n = 10_000 if fast else 53_145
    data = tiger_like(n)
    desc = load_description("hs", data, capacity=100)
    total = desc.total_nodes
    print(f"Hilbert-packed tree: {total} pages")

    buffer_sizes = [2, 5, 10, 20, 40, 80, 160, 320, 480]
    buffer_sizes = [b for b in buffer_sizes if b < total]

    point = UniformPointWorkload()
    region = UniformRegionWorkload((0.1, 0.1))
    point_costs = sweep(desc, point, buffer_sizes)
    region_costs = sweep(desc, region, buffer_sizes)

    print(f"\n{'buffer':>7} {'% of tree':>10} {'ED point':>10} {'ED region':>10}")
    for b, pc, rc in zip(buffer_sizes, point_costs, region_costs):
        print(f"{b:>7} {100 * b / total:>9.1f}% {pc:>10.4f} {rc:>10.4f}")

    knee_point = find_knee(buffer_sizes, point_costs)
    knee_region = find_knee(buffer_sizes, region_costs)
    print(f"\nknee (point queries):  {knee_point} pages"
          f" — beyond this, extra buffer helps only modestly")
    print(f"knee (region queries): {knee_region}"
          f" — the paper: region-query benefit is 'more linear',"
          f" so the knee is later or absent")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
